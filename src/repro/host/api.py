"""The user-level key-value API (paper §2.1): PUT, GET, SEEK, NEXT.

This is the surface a downstream application uses — the equivalent of the
paper's "user-level key-value APIs" box in Figure 1(b). It hides command
construction entirely; everything below it goes through real simulated
NVMe commands.
"""

from __future__ import annotations

from repro.core.config import BandSlimConfig
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError, NVMeError
from repro.nvme.command import MAX_KEY_BYTES
from repro.sim.latency import LatencyModel


class KVStore:
    """A KV-SSD-backed key-value store.

    >>> store = KVStore.open()
    >>> store.put(b"usr1", b"hello")
    >>> store.get(b"usr1")
    b'hello'
    """

    def __init__(self, device: KVSSD) -> None:
        self.device = device
        self.driver = device.driver
        self._vlog_gc = None  # lazily built by compact_vlog()

    @classmethod
    def open(
        cls,
        config: BandSlimConfig | None = None,
        latency: LatencyModel | None = None,
        **build_kwargs,
    ) -> "KVStore":
        """Create a store over a freshly built simulated device."""
        return cls(KVSSD.build(config=config, latency=latency, **build_kwargs))

    # --- point operations ---------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, bytes):
            raise NVMeError(f"keys must be bytes, got {type(key).__name__}")
        if not 0 < len(key) <= MAX_KEY_BYTES:
            raise NVMeError(
                f"key length must be 1..{MAX_KEY_BYTES} bytes, got {len(key)}"
            )

    def put(self, key: bytes, value: bytes) -> float:
        """Store a pair; returns the simulated response time (µs)."""
        self._check_key(key)
        result = self.driver.put(key, value)
        if not result.ok:
            raise NVMeError(f"PUT failed with status {result.status.name}")
        return result.latency_us

    def get(self, key: bytes) -> bytes:
        """Fetch a value; raises KeyNotFoundError if absent."""
        self._check_key(key)
        result = self.driver.get(key)
        if result.value is None:
            raise NVMeError(f"GET failed with status {result.status.name}")
        return result.value

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        self.driver.delete(key)

    def exists(self, key: bytes) -> bool:
        self._check_key(key)
        return self.driver.exists(key)

    # --- range scan -------------------------------------------------------------

    def seek(self, start_key: bytes) -> "KVIterator":
        """Position an iterator at the first key >= start_key (SEEK)."""
        return KVIterator(self, start_key)

    def scan(
        self,
        start_key: bytes = b"\x00",
        limit: int | None = None,
        readahead: bool | None = None,
    ):
        """Convenience: yield (key, value) pairs from start_key onward.

        ``readahead=None`` (the default) enables batched value readahead
        whenever the device is configured with ``queue_depth > 1``: each
        LIST batch of keys is resolved with one pipelined
        :meth:`~repro.core.driver.BandSlimDriver.get_many` call instead of
        a GET per key (see :class:`~repro.nvme.iterator.ScanReadahead`).
        Pass True/False to force it either way; at queue depth 1 both
        paths issue the same command sequence.
        """
        if readahead is None:
            readahead = self.driver.config.queue_depth > 1
        if readahead:
            from repro.nvme.iterator import ScanReadahead

            it = ScanReadahead(self.driver, start_key)
        else:
            it = self.seek(start_key)
        count = 0
        while limit is None or count < limit:
            pair = it.next()
            if pair is None:
                return
            yield pair
            count += 1

    def device_scan(self, start_key: bytes = b"\x00", limit: int | None = None):
        """Range scan through a *device-side* iterator ([22]'s interface).

        One ITER_NEXT command returns a whole batch of (key, value) pairs
        with values resolved inside the device — far fewer commands than
        :meth:`scan`'s LIST + per-key GET host loop.
        """
        iterator_id = self.driver.iter_open(start_key)
        count = 0
        try:
            while True:
                pairs, exhausted = self.driver.iter_next(iterator_id)
                for pair in pairs:
                    if limit is not None and count >= limit:
                        return
                    yield pair
                    count += 1
                if exhausted:
                    return
        finally:
            self.driver.iter_close(iterator_id)

    # --- lifecycle ------------------------------------------------------------------

    def flush(self) -> None:
        """Persist all buffered state (clean shutdown)."""
        self.driver.flush()

    def compact_vlog(self, dead_threshold: float = 0.5):
        """Reclaim dead vLog space if the dead fraction crosses the
        threshold (WiscKey-style compaction; see repro.lsm.vlog_gc)."""
        from repro.lsm.vlog_gc import VLogCompactor

        if self._vlog_gc is None:
            self._vlog_gc = VLogCompactor(
                self.device.lsm, self.device.policy, self.device.buffer
            )
        return self._vlog_gc.compact_if_needed(dead_threshold=dead_threshold)

    def stats(self) -> dict[str, float]:
        return self.device.snapshot()


class KVIterator:
    """SEEK/NEXT cursor over the ordered key space.

    Keys are fetched in device-page-sized batches via KV_LIST commands;
    NEXT resolves each key's value with a GET — the iterator interface the
    underlying KV-SSD exposes [22].
    """

    _BATCH = 32

    def __init__(self, store: KVStore, start_key: bytes) -> None:
        self.store = store
        self._pending: list[bytes] = []
        self._resume_key = start_key or b"\x00"
        self._last_returned: bytes | None = None
        self._exhausted = False

    def _refill(self) -> None:
        if self._exhausted:
            return
        keys = self.store.driver.list_keys(self._resume_key, max_keys=self._BATCH)
        # Resume from the last key *inclusive* and drop it from the refill:
        # appending a byte to resume "strictly after" would overflow the
        # 16-byte key field for maximum-length keys.
        if keys and keys[0] == self._last_returned:
            keys = keys[1:]
        if not keys:
            self._exhausted = True
            return
        self._pending = keys
        self._last_returned = keys[-1]
        self._resume_key = keys[-1]
        if len(keys) < self._BATCH - 1:
            self._exhausted = True

    def next(self) -> tuple[bytes, bytes] | None:
        """NEXT: the following (key, value) pair, or None at end."""
        while not self._pending:
            if self._exhausted:
                return None
            self._refill()
        key = self._pending.pop(0)
        try:
            return key, self.store.get(key)
        except KeyNotFoundError:
            # Deleted between LIST and GET (possible mid-scan deletes).
            return self.next()

    def __iter__(self):
        while True:
            pair = self.next()
            if pair is None:
                return
            yield pair
