"""An LRU read cache over NAND pages (device DRAM).

Real SSD firmware keeps recently read flash pages in DRAM; the paper's
evaluation is write-only so it never shows, but the read path cares — and
it interacts with BandSlim's packing in an interesting way: densely packed
values share pages, so sequential GETs (range scans) hit the same cached
page over and over, while the Block layout's one-value-per-4 KiB-slot
spreads the same data across 4× the pages. `bench_ablation_scan.py`
measures exactly that synergy.

Disabled by default (`read_cache_pages = 0`) so every paper-figure bench
runs with the paper's memoryless read path.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import DeviceMemoryError


class PageCache:
    """LRU cache of logical-page contents with hit/miss accounting."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise DeviceMemoryError(
                f"cache capacity must be >= 1 page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, lpn: int) -> bytes | None:
        """Look up a page; refreshes LRU position on hit."""
        data = self._pages.get(lpn)
        if data is None:
            self.misses += 1
            return None
        self._pages.move_to_end(lpn)
        self.hits += 1
        return data

    def put(self, lpn: int, data: bytes) -> None:
        """Insert/refresh a page, evicting the LRU page when full."""
        if lpn in self._pages:
            self._pages.move_to_end(lpn)
            self._pages[lpn] = data
            return
        if len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[lpn] = data

    def invalidate(self, lpn: int) -> None:
        """Drop a page (its logical content changed or was trimmed)."""
        if self._pages.pop(lpn, None) is not None:
            self.invalidations += 1

    def clear(self) -> None:
        self._pages.clear()
