"""An LRU read cache over NAND pages (device DRAM).

Real SSD firmware keeps recently read flash pages in DRAM; the paper's
evaluation is write-only so it never shows, but the read path cares — and
it interacts with BandSlim's packing in an interesting way: densely packed
values share pages, so sequential GETs (range scans) hit the same cached
page over and over, while the Block layout's one-value-per-4 KiB-slot
spreads the same data across 4× the pages. `bench_ablation_scan.py` and
`bench_ablation_reads.py` measure exactly that synergy.

The cache is *timeline-aware*: each entry carries ``ready_us``, the booked
NAND completion of the read that filled it. On the synchronous path the
fill has always completed (``ready_us <= now``) and hits behave exactly as
before; inside a pipelined GET batch a hit on a page whose deferred fill
is still in flight must not complete before the fill does, so the FTL
settles that dependency into the command's finish horizon
(see ``NandFlash.settle_read_dependency``).

Disabled by default (`read_cache_pages = 0`) so every paper-figure bench
runs with the paper's memoryless read path.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import DeviceMemoryError


class PageCache:
    """LRU cache of logical-page contents with hit/miss accounting."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise DeviceMemoryError(
                f"cache capacity must be >= 1 page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        #: lpn -> (data, ready_us of the NAND read that filled the entry).
        self._pages: OrderedDict[int, tuple[bytes, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, lpn: int) -> bytes | None:
        """Look up a page's bytes; refreshes LRU position on hit."""
        entry = self.lookup(lpn)
        return entry[0] if entry is not None else None

    def lookup(self, lpn: int) -> tuple[bytes, float] | None:
        """Look up ``(data, ready_us)``; refreshes LRU position on hit."""
        entry = self._pages.get(lpn)
        if entry is None:
            self.misses += 1
            return None
        self._pages.move_to_end(lpn)
        self.hits += 1
        return entry

    def put(self, lpn: int, data: bytes, ready_us: float = 0.0) -> None:
        """Insert/refresh a page, evicting the LRU page when full.

        ``ready_us`` is the booked NAND completion of the fill read; 0 (the
        default) means "already available" and preserves the plain-LRU
        behaviour for callers that do not track timing.
        """
        if lpn in self._pages:
            self._pages.move_to_end(lpn)
            self._pages[lpn] = (data, ready_us)
            return
        if len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[lpn] = (data, ready_us)

    def invalidate(self, lpn: int) -> None:
        """Drop a page (its logical content changed or was trimmed)."""
        if self._pages.pop(lpn, None) is not None:
            self.invalidations += 1

    def clear(self) -> None:
        self._pages.clear()
