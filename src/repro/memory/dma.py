"""The in-device DMA engine, with its page-alignment restriction.

The paper's testbed DMA engine "require[s] that the transfer size and
destination addresses be page-aligned" (§2.5, citing the Gen-Z memory pool
implementation [20]); device drivers are written around the same constraint.
This restriction is the *reason* Selective/Backfill packing exist: a DMA'd
value cannot land at an arbitrary write-pointer offset, so the controller
must either memcpy it there (All Packing) or leave it page-aligned and work
around it (Selective / Backfill).

The engine enforces the restriction by raising :class:`DMAAlignmentError`
on any violating request — firmware code paths that would misuse it fail
loudly in tests rather than silently diverging from hardware behavior.
"""

from __future__ import annotations

from repro.errors import DMAAlignmentError
from repro.memory.device import DeviceDRAM
from repro.memory.host import HostBuffer, HostMemory
from repro.pcie.link import PCIeLink
from repro.units import MEM_PAGE_SIZE, is_aligned


class DMAEngine:
    """Moves page-unit payloads between host pages and device DRAM.

    Every transfer both moves real bytes and charges the link (traffic +
    time), so byte-accuracy and accounting can never drift apart.
    """

    def __init__(self, link: PCIeLink, dram: DeviceDRAM, host_mem: HostMemory) -> None:
        self.link = link
        self.dram = dram
        self.host_mem = host_mem
        #: Completed host→device transactions (for tests/metrics).
        self.h2d_transfers = 0
        self.d2h_transfers = 0

    def _check_device_window(self, device_addr: int, wire_bytes: int) -> None:
        if not is_aligned(device_addr, MEM_PAGE_SIZE):
            raise DMAAlignmentError(
                f"DMA destination {device_addr:#x} is not {MEM_PAGE_SIZE}-aligned"
            )
        if wire_bytes <= 0 or not is_aligned(wire_bytes, MEM_PAGE_SIZE):
            raise DMAAlignmentError(
                f"DMA size {wire_bytes} is not a positive multiple of "
                f"{MEM_PAGE_SIZE}"
            )

    def host_to_device(self, buf: HostBuffer, device_addr: int) -> int:
        """DMA a staged host buffer into device DRAM at ``device_addr``.

        The transfer moves the buffer's full *wire* size (whole pages), not
        just its useful length — the amplification of paper §2.3. Returns
        wire bytes moved.
        """
        wire = buf.wire_bytes
        self._check_device_window(device_addr, wire)
        for i, page in enumerate(buf.pages):
            self.dram.write(device_addr + i * MEM_PAGE_SIZE, bytes(page.data))
        self.link.dma_host_to_device(wire)
        self.h2d_transfers += 1
        return wire

    def host_to_device_scatter(self, buf: HostBuffer, page_targets: list[int]) -> int:
        """DMA a staged buffer to per-page device destinations.

        The NAND page buffer is a circular pool, so a multi-page transfer's
        pages can land in non-contiguous DRAM slots; each 4 KiB page still
        honors the alignment restriction individually. Charged as one link
        transaction (one descriptor chain).
        """
        if len(page_targets) != len(buf.pages):
            raise DMAAlignmentError(
                f"{len(buf.pages)} source pages but {len(page_targets)} targets"
            )
        for target in page_targets:
            if not is_aligned(target, MEM_PAGE_SIZE):
                raise DMAAlignmentError(
                    f"scatter DMA target {target:#x} is not page-aligned"
                )
        for page, target in zip(buf.pages, page_targets):
            self.dram.write(target, bytes(page.data))
        wire = buf.wire_bytes
        self.link.dma_host_to_device(wire)
        self.h2d_transfers += 1
        return wire

    def device_to_host(self, device_addr: int, buf: HostBuffer) -> int:
        """DMA device DRAM back into a host buffer (GET path)."""
        wire = buf.wire_bytes
        self._check_device_window(device_addr, wire)
        for i, page in enumerate(buf.pages):
            chunk = self.dram.read(device_addr + i * MEM_PAGE_SIZE, MEM_PAGE_SIZE)
            page.data[:] = chunk
        self.link.dma_device_to_host(wire)
        self.d2h_transfers += 1
        return wire
