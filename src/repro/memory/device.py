"""Device DRAM: the battery-backed memory holding the NAND page buffer.

The Cosmos+ device exposes one flat DRAM space to firmware; the NAND page
buffer, the DMA Log Table and scratch areas are carved out of it as regions.
We model the DRAM as a single bounds-checked bytearray and regions as
(base, size) windows onto it, so every byte the packing policies touch is a
real byte that later gets programmed to simulated NAND and read back by GET.
"""

from __future__ import annotations

from repro.errors import DeviceMemoryError


class DeviceDRAM:
    """Flat, bounds-checked device memory."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise DeviceMemoryError(f"DRAM size must be positive, got {size}")
        self._data = bytearray(size)
        self.size = size
        self._next_region_base = 0
        #: Total bytes moved by firmware memcpy, for Fig 12(d) accounting.
        self.memcpy_bytes_total = 0

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise DeviceMemoryError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside DRAM of "
                f"size {self.size:#x}"
            )

    def write(self, addr: int, data: bytes) -> None:
        n = len(data)
        if addr < 0 or addr + n > self.size:
            raise DeviceMemoryError(
                f"access [{addr:#x}, {addr + n:#x}) outside DRAM of "
                f"size {self.size:#x}"
            )
        self._data[addr : addr + n] = data

    def read(self, addr: int, nbytes: int) -> bytes:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise DeviceMemoryError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside DRAM of "
                f"size {self.size:#x}"
            )
        return bytes(self._data[addr : addr + nbytes])

    def memcpy(self, dst: int, src: int, nbytes: int) -> None:
        """Firmware-core copy inside DRAM (the cost All-Packing pays)."""
        self._check(dst, nbytes)
        self._check(src, nbytes)
        self._data[dst : dst + nbytes] = self._data[src : src + nbytes]
        self.memcpy_bytes_total += nbytes

    def fill(self, addr: int, nbytes: int, byte: int = 0) -> None:
        self._check(addr, nbytes)
        if not 0 <= byte <= 255:
            raise DeviceMemoryError(f"fill byte out of range: {byte}")
        self._data[addr : addr + nbytes] = bytes([byte]) * nbytes

    def carve_region(self, name: str, size: int) -> "DRAMRegion":
        """Allocate the next ``size`` bytes as a named region."""
        if self._next_region_base + size > self.size:
            raise DeviceMemoryError(
                f"region {name!r} of {size} bytes does not fit: "
                f"{self.size - self._next_region_base} bytes left"
            )
        region = DRAMRegion(self, name, self._next_region_base, size)
        self._next_region_base += size
        return region


class DRAMRegion:
    """A named (base, size) window onto :class:`DeviceDRAM`.

    Offsets are region-relative; ``abs_addr`` converts to DRAM-absolute
    addresses (what DMA destinations and the write pointer use).
    """

    def __init__(self, dram: DeviceDRAM, name: str, base: int, size: int) -> None:
        if size <= 0:
            raise DeviceMemoryError(f"region {name!r} size must be positive")
        self.dram = dram
        self.name = name
        self.base = base
        self.size = size

    def abs_addr(self, offset: int) -> int:
        if not 0 <= offset <= self.size:
            raise DeviceMemoryError(
                f"offset {offset} outside region {self.name!r} of size {self.size}"
            )
        return self.base + offset

    def rel_offset(self, abs_addr: int) -> int:
        if not self.base <= abs_addr <= self.base + self.size:
            raise DeviceMemoryError(
                f"address {abs_addr:#x} outside region {self.name!r}"
            )
        return abs_addr - self.base

    def write(self, offset: int, data: bytes) -> None:
        # Bounds in one check; dram.write re-validates against the full
        # DRAM, so the abs_addr range check would be redundant here.
        if offset < 0 or offset + len(data) > self.size:
            raise DeviceMemoryError(
                f"write of {len(data)} bytes at offset {offset} overruns "
                f"region {self.name!r} ({self.size} bytes)"
            )
        self.dram.write(self.base + offset, data)

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or offset + nbytes > self.size:
            raise DeviceMemoryError(
                f"read of {nbytes} bytes at offset {offset} overruns "
                f"region {self.name!r} ({self.size} bytes)"
            )
        return self.dram.read(self.base + offset, nbytes)

    def fill(self, offset: int, nbytes: int, byte: int = 0) -> None:
        if offset + nbytes > self.size:
            raise DeviceMemoryError(f"fill overruns region {self.name!r}")
        self.dram.fill(self.abs_addr(offset), nbytes, byte)
