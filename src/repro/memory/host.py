"""Host memory: the 4 KiB-page world PRP lists are built from.

When the key-value driver stages a value for a PRP transfer it allocates
whole memory pages and copies the value in, page by page — exactly the
behavior that makes a 32 B value occupy (and ship) a full 4 KiB page
(paper §2.3, Figure 2). The allocator hands out page-aligned addresses in a
flat simulated physical address space so PRP entries carry realistic
pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HostMemoryError
from repro.units import MEM_PAGE_SIZE, pages_needed

_ZERO_PAGE = bytes(MEM_PAGE_SIZE)


@dataclass
class HostPage:
    """One pinned host memory page."""

    addr: int
    data: bytearray = field(default_factory=lambda: bytearray(MEM_PAGE_SIZE))

    def __post_init__(self) -> None:
        if self.addr % MEM_PAGE_SIZE != 0:
            raise HostMemoryError(f"page address {self.addr:#x} not page-aligned")
        if len(self.data) != MEM_PAGE_SIZE:
            raise HostMemoryError(
                f"page must be exactly {MEM_PAGE_SIZE} bytes, got {len(self.data)}"
            )


@dataclass
class HostBuffer:
    """A value staged across one or more host pages for DMA.

    ``length`` is the number of *useful* bytes; the wire size of a PRP
    transfer of this buffer is ``len(pages) * MEM_PAGE_SIZE``.
    """

    pages: list[HostPage]
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise HostMemoryError(f"negative buffer length {self.length}")
        if pages_needed(self.length) != len(self.pages):
            raise HostMemoryError(
                f"{self.length} bytes needs {pages_needed(self.length)} pages, "
                f"got {len(self.pages)}"
            )

    @property
    def wire_bytes(self) -> int:
        """Bytes a page-unit DMA of this buffer moves on the link."""
        return len(self.pages) * MEM_PAGE_SIZE

    @property
    def page_addrs(self) -> list[int]:
        return [p.addr for p in self.pages]

    def tobytes(self) -> bytes:
        """The useful payload bytes, reassembled across pages."""
        if len(self.pages) == 1:
            return bytes(self.pages[0].data[: self.length])
        raw = b"".join(bytes(p.data) for p in self.pages)
        return raw[: self.length]


class HostMemory:
    """Bump allocator over a simulated host physical address space.

    Pages are recycled through a free list; ``allocated_pages`` exposes the
    live count so tests can assert the driver releases staging buffers.
    """

    #: Staging buffers start high in the address space, clear of device BARs.
    BASE_ADDR = 0x1_0000_0000

    def __init__(self) -> None:
        self._next_addr = self.BASE_ADDR
        # Whole HostPage objects are recycled (not just addresses): every
        # PUT stages and releases a buffer, and re-running the dataclass
        # constructor per page shows up in trace-replay wall time.
        self._free: list[HostPage] = []
        self._live: dict[int, HostPage] = {}

    @property
    def allocated_pages(self) -> int:
        return len(self._live)

    def alloc_page(self) -> HostPage:
        """Allocate one zeroed page."""
        if self._free:
            page = self._free.pop()
            page.data[:] = _ZERO_PAGE  # recycled pages come back zeroed
        else:
            page = HostPage(self._next_addr)
            self._next_addr += MEM_PAGE_SIZE
        self._live[page.addr] = page
        return page

    def free_page(self, page: HostPage) -> None:
        if page.addr not in self._live:
            raise HostMemoryError(f"double free of page {page.addr:#x}")
        del self._live[page.addr]
        self._free.append(page)

    def stage_value(self, value: bytes) -> HostBuffer:
        """Copy ``value`` into freshly allocated pages (driver PUT staging).

        This is the copy the kernel driver performs when pinning a user
        buffer for DMA; the page-granular result is what PRP describes.
        """
        buf = HostBuffer(
            pages=[self.alloc_page() for _ in range(pages_needed(len(value)))],
            length=len(value),
        )
        for i, page in enumerate(buf.pages):
            chunk = value[i * MEM_PAGE_SIZE : (i + 1) * MEM_PAGE_SIZE]
            page.data[: len(chunk)] = chunk
        return buf

    def alloc_buffer(self, length: int) -> HostBuffer:
        """Allocate an uninitialized staging buffer (GET destination)."""
        return HostBuffer(
            pages=[self.alloc_page() for _ in range(pages_needed(length))],
            length=length,
        )

    def release(self, buf: HostBuffer) -> None:
        """Return a buffer's pages to the free list."""
        for page in buf.pages:
            self.free_page(page)

    def page_at(self, addr: int) -> HostPage:
        """Resolve a physical page address (what the device's DMA does)."""
        try:
            return self._live[addr]
        except KeyError:
            raise HostMemoryError(f"no live page at {addr:#x}") from None
