"""Memory substrates: host page allocator, device DRAM, restricted DMA engine."""

from repro.memory.cache import PageCache
from repro.memory.device import DeviceDRAM, DRAMRegion
from repro.memory.dma import DMAEngine
from repro.memory.host import HostBuffer, HostMemory, HostPage

__all__ = [
    "PageCache",
    "DeviceDRAM",
    "DRAMRegion",
    "DMAEngine",
    "HostBuffer",
    "HostMemory",
    "HostPage",
]
