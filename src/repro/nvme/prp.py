"""Physical Region Page (PRP) construction and resolution.

PRP is the NVMe transfer mechanism the paper identifies as the root of
traffic amplification (§2.3): it can only describe whole memory pages, so a
32 B value ships as 4 KiB. We implement the real three-case PRP scheme:

* 1 page   → PRP1 holds the page address, PRP2 unused;
* 2 pages  → PRP1 and PRP2 each hold a page address;
* >2 pages → PRP2 points at a *PRP list* page in host memory holding packed
  8-byte entries, which the device must additionally fetch over the link —
  amplification on top of amplification for large values.

The list page is a real simulated host page containing packed addresses;
the controller parses those bytes back out, so the PRP path is
byte-faithful end to end.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import NVMeError
from repro.memory.host import HostBuffer, HostMemory, HostPage
from repro.pcie.link import PCIeLink
from repro.pcie.metrics import TrafficCategory
from repro.units import MEM_PAGE_SIZE, is_aligned

#: Size of one PRP list entry (a 64-bit physical address).
PRP_ENTRY_SIZE = 8


@dataclass
class PRPDescriptor:
    """What the driver puts in the command, plus the list page to free."""

    prp1: int
    prp2: int
    n_pages: int
    #: Host page holding the PRP list (>2-page transfers only).
    list_page: HostPage | None = None

    @property
    def uses_list(self) -> bool:
        return self.list_page is not None


def build_prp(host_mem: HostMemory, buf: HostBuffer) -> PRPDescriptor:
    """Describe a staged host buffer with PRP entries (driver side)."""
    addrs = buf.page_addrs
    if not addrs:
        raise NVMeError("cannot build PRP for an empty buffer")
    for addr in addrs:
        if not is_aligned(addr, MEM_PAGE_SIZE):
            raise NVMeError(f"PRP page address {addr:#x} not page-aligned")
    if len(addrs) == 1:
        return PRPDescriptor(prp1=addrs[0], prp2=0, n_pages=1)
    if len(addrs) == 2:
        return PRPDescriptor(prp1=addrs[0], prp2=addrs[1], n_pages=2)
    # >2 pages: PRP2 points at a list page holding entries for pages 1..n-1.
    n_entries = len(addrs) - 1
    if n_entries * PRP_ENTRY_SIZE > MEM_PAGE_SIZE:
        # One list page describes up to 512 pages = 2 MiB; far beyond any
        # KV value in the paper's workloads (max 16 KiB). Chained lists are
        # out of scope and loudly rejected.
        raise NVMeError(
            f"transfer of {len(addrs)} pages needs a chained PRP list; "
            "unsupported (max 512 pages + 1)"
        )
    list_page = host_mem.alloc_page()
    for i, addr in enumerate(addrs[1:]):
        struct.pack_into("<Q", list_page.data, i * PRP_ENTRY_SIZE, addr)
    return PRPDescriptor(
        prp1=addrs[0], prp2=list_page.addr, n_pages=len(addrs), list_page=list_page
    )


def resolve_prp(
    host_mem: HostMemory,
    link: PCIeLink,
    prp1: int,
    prp2: int,
    length: int,
) -> HostBuffer:
    """Device side: turn (PRP1, PRP2, length) back into host pages.

    Charges the link for the PRP-list fetch when one is needed, exactly the
    extra traffic a real controller generates.
    """
    if length <= 0:
        raise NVMeError(f"PRP resolve with non-positive length {length}")
    n_pages = -(-length // MEM_PAGE_SIZE)
    if n_pages == 1:
        addrs = [prp1]
    elif n_pages == 2:
        if prp2 == 0:
            raise NVMeError("two-page transfer with PRP2 unset")
        addrs = [prp1, prp2]
    else:
        if prp2 == 0:
            raise NVMeError(f"{n_pages}-page transfer with PRP2 unset")
        list_page = host_mem.page_at(prp2)
        n_entries = n_pages - 1
        fetch_bytes = n_entries * PRP_ENTRY_SIZE
        link.meter.record(TrafficCategory.SQ_ENTRY, fetch_bytes)
        link.clock.advance(link.latency.sq_fetch_us)
        addrs = [prp1] + [
            struct.unpack_from("<Q", list_page.data, i * PRP_ENTRY_SIZE)[0]
            for i in range(n_entries)
        ]
    pages = [host_mem.page_at(addr) for addr in addrs]
    return HostBuffer(pages=pages, length=length)
