"""Submission and completion queues with doorbell semantics.

The paper's testbed submits through the NVMe passthrough, which keeps a
single command in flight (§4.2) — but the queues themselves are real ring
buffers with head/tail doorbells, so deeper-queue experiments work without
touching the driver. For queue depths above 1 the pipelined driver parks
each command's completion on a :class:`CompletionScheduler` keyed by its
finish time on the NAND timeline, and reaps completions in *finish* order
rather than submission order — commands whose NAND work lands on distinct
ways complete out of order exactly as on multi-queue hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import NVMeError, QueueFullError
from repro.nvme.command import NVMeCommand
from repro.nvme.opcodes import StatusCode


@dataclass(frozen=True, slots=True)
class NVMeCompletion:
    """A completion queue entry (the fields the simulation consumes)."""

    cid: int
    status: StatusCode = StatusCode.SUCCESS
    #: Command-specific result dword (e.g. value size for EXIST/RETRIEVE).
    result: int = 0

    @property
    def ok(self) -> bool:
        return self.status is StatusCode.SUCCESS


class CompletionScheduler:
    """Orders in-flight completions by virtual finish time.

    The controller's deferred mode hands back ``(cqe, finish_us)`` pairs
    without posting them; the driver parks them here and delivers the
    earliest-finishing one whenever its in-flight window is full (or when
    draining). Ties break by schedule order, matching hardware arbitration
    of same-cycle completions.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, NVMeCompletion]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def outstanding(self) -> int:
        return len(self._heap)

    @property
    def earliest_finish_us(self) -> float:
        if not self._heap:
            raise NVMeError("no in-flight completions")
        return self._heap[0][0]

    def schedule(self, cqe: NVMeCompletion, finish_us: float) -> None:
        heapq.heappush(self._heap, (finish_us, self._seq, cqe))
        self._seq += 1

    def pop_earliest(self) -> tuple[NVMeCompletion, float]:
        """Remove and return the next-finishing (cqe, finish_us)."""
        if not self._heap:
            raise NVMeError("no in-flight completions")
        finish_us, _, cqe = heapq.heappop(self._heap)
        return cqe, finish_us


class _Ring:
    """Shared ring-buffer mechanics for SQ and CQ."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise NVMeError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots: list[object | None] = [None] * depth
        self._head = 0  # consumer index
        self._tail = 0  # producer index
        self._count = 0
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Record occupancy markers on every submit/fetch/post/reap."""
        self._tracer = tracer

    @property
    def occupancy(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_full(self) -> bool:
        return self._count == self.depth

    def _push(self, item: object) -> int:
        # Direct count checks: these two run twice per command.
        if self._count == self.depth:
            raise QueueFullError(f"queue full at depth {self.depth}")
        slot = self._tail
        self._slots[slot] = item
        self._tail = (slot + 1) % self.depth
        self._count += 1
        return slot

    def _pop(self) -> object:
        if self._count == 0:
            raise NVMeError("pop from empty queue")
        head = self._head
        item = self._slots[head]
        self._slots[head] = None
        self._head = (head + 1) % self.depth
        self._count -= 1
        return item


class SubmissionQueue(_Ring):
    """Driver-side producer, controller-side consumer.

    FIFO order is load-bearing: trailing transfer commands must be consumed
    in submission order for fragment reassembly (paper §3.3.1 — "the driver
    submits transfer commands to the submission queue where the write
    command for that value was inserted, ensuring FIFO order").
    """

    def __init__(self, depth: int = 64, qid: int = 1) -> None:
        super().__init__(depth)
        self.qid = qid
        self.doorbell_rings = 0

    def submit(self, cmd: NVMeCommand) -> int:
        """Enqueue a command and ring the tail doorbell; returns slot."""
        slot = self._push(cmd)
        self.doorbell_rings += 1
        if self._tracer is not None:
            self._tracer.instant(
                "queue", "sq_submit", resource=f"sq{self.qid}",
                occupancy=self._count,
            )
        return slot

    def fetch(self) -> NVMeCommand:
        """Controller fetches the oldest pending command."""
        cmd = self._pop()
        if self._tracer is not None:
            self._tracer.instant(
                "queue", "sq_fetch", resource=f"sq{self.qid}",
                occupancy=self._count,
            )
        return cmd  # type: ignore[return-value]  # submit() types it


class CompletionQueue(_Ring):
    """Controller-side producer, driver-side consumer."""

    def __init__(self, depth: int = 64, qid: int = 1) -> None:
        super().__init__(depth)
        self.qid = qid

    def post(self, completion: NVMeCompletion) -> int:
        slot = self._push(completion)
        if self._tracer is not None:
            self._tracer.instant(
                "queue", "cq_post", resource=f"cq{self.qid}",
                occupancy=self._count,
            )
        return slot

    def reap(self) -> NVMeCompletion:
        cqe = self._pop()
        if self._tracer is not None:
            self._tracer.instant(
                "queue", "cq_reap", resource=f"cq{self.qid}",
                occupancy=self._count,
            )
        return cqe  # type: ignore[return-value]  # post() types it
