"""Submission and completion queues with doorbell semantics.

The paper's testbed submits through the NVMe passthrough, which keeps a
single command in flight (§4.2) — but the queues themselves are real ring
buffers with head/tail doorbells, so deeper-queue experiments (ablations)
work without touching the driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NVMeError, QueueFullError
from repro.nvme.command import NVMeCommand
from repro.nvme.opcodes import StatusCode


@dataclass(frozen=True)
class NVMeCompletion:
    """A completion queue entry (the fields the simulation consumes)."""

    cid: int
    status: StatusCode = StatusCode.SUCCESS
    #: Command-specific result dword (e.g. value size for EXIST/RETRIEVE).
    result: int = 0

    @property
    def ok(self) -> bool:
        return self.status is StatusCode.SUCCESS


class _Ring:
    """Shared ring-buffer mechanics for SQ and CQ."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise NVMeError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots: list[object | None] = [None] * depth
        self._head = 0  # consumer index
        self._tail = 0  # producer index
        self._count = 0

    @property
    def occupancy(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_full(self) -> bool:
        return self._count == self.depth

    def _push(self, item: object) -> int:
        if self.is_full:
            raise QueueFullError(f"queue full at depth {self.depth}")
        slot = self._tail
        self._slots[slot] = item
        self._tail = (self._tail + 1) % self.depth
        self._count += 1
        return slot

    def _pop(self) -> object:
        if self.is_empty:
            raise NVMeError("pop from empty queue")
        item = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.depth
        self._count -= 1
        return item


class SubmissionQueue(_Ring):
    """Driver-side producer, controller-side consumer.

    FIFO order is load-bearing: trailing transfer commands must be consumed
    in submission order for fragment reassembly (paper §3.3.1 — "the driver
    submits transfer commands to the submission queue where the write
    command for that value was inserted, ensuring FIFO order").
    """

    def __init__(self, depth: int = 64, qid: int = 1) -> None:
        super().__init__(depth)
        self.qid = qid
        self.doorbell_rings = 0

    def submit(self, cmd: NVMeCommand) -> int:
        """Enqueue a command and ring the tail doorbell; returns slot."""
        slot = self._push(cmd)
        self.doorbell_rings += 1
        return slot

    def fetch(self) -> NVMeCommand:
        """Controller fetches the oldest pending command."""
        cmd = self._pop()
        assert isinstance(cmd, NVMeCommand)
        return cmd


class CompletionQueue(_Ring):
    """Controller-side producer, driver-side consumer."""

    def __init__(self, depth: int = 64, qid: int = 1) -> None:
        super().__init__(depth)
        self.qid = qid

    def post(self, completion: NVMeCompletion) -> int:
        return self._push(completion)

    def reap(self) -> NVMeCompletion:
        cqe = self._pop()
        assert isinstance(cqe, NVMeCompletion)
        return cqe
