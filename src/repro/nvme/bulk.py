"""Bulk PUT payload format — the host-side-batching comparator (§1).

Dotori [9] and KV-CSD [27] mitigate transfer amplification by batching many
pairs on the *host* and shipping one big payload. The paper's §1 names the
costs: volatile host buffers risk data loss on power failure, and the
device pays "extra overhead from unpacking them". To make that argument
measurable, this module implements the approach: a packed payload of
(key, value) records carried by one ``BULK_PUT`` command over ordinary PRP.

Payload layout::

    payload := count:u32  record*
    record  := klen:u8  key  vlen:u32  value
"""

from __future__ import annotations

import struct

from repro.errors import NVMeError
from repro.nvme.command import MAX_KEY_BYTES, NVMeCommand
from repro.nvme.opcodes import KVOpcode
from repro.nvme.prp import PRPDescriptor

_HEADER = struct.Struct("<I")
_VLEN = struct.Struct("<I")


def pack_bulk_payload(pairs: list[tuple[bytes, bytes]]) -> bytes:
    """Serialize (key, value) pairs into one bulk payload."""
    if not pairs:
        raise NVMeError("bulk payload needs at least one pair")
    out = bytearray(_HEADER.pack(len(pairs)))
    for key, value in pairs:
        if not 0 < len(key) <= MAX_KEY_BYTES:
            raise NVMeError(f"key length {len(key)} not in 1..{MAX_KEY_BYTES}")
        if not value:
            raise NVMeError("bulk payload values must be non-empty")
        out += bytes([len(key)])
        out += key
        out += _VLEN.pack(len(value))
        out += value
    return bytes(out)


def unpack_bulk_payload(payload: bytes) -> list[tuple[bytes, bytes]]:
    """Device side: parse the records back out (charged per pair)."""
    if len(payload) < _HEADER.size:
        raise NVMeError("bulk payload shorter than its header")
    (count,) = _HEADER.unpack_from(payload, 0)
    pos = _HEADER.size
    pairs: list[tuple[bytes, bytes]] = []
    for _ in range(count):
        if pos >= len(payload):
            raise NVMeError("bulk payload truncated (key length)")
        klen = payload[pos]
        pos += 1
        key = payload[pos : pos + klen]
        pos += klen
        if len(key) != klen:
            raise NVMeError("bulk payload truncated (key)")
        if pos + _VLEN.size > len(payload):
            raise NVMeError("bulk payload truncated (value length)")
        (vlen,) = _VLEN.unpack_from(payload, pos)
        pos += _VLEN.size
        value = payload[pos : pos + vlen]
        pos += vlen
        if len(value) != vlen:
            raise NVMeError("bulk payload truncated (value)")
        pairs.append((key, value))
    return pairs


def build_bulk_put_command(
    cid: int, payload_size: int, pair_count: int, prp: PRPDescriptor, nsid: int = 1
) -> NVMeCommand:
    """One BULK_PUT command; the payload travels via PRP page-unit DMA."""
    if payload_size <= 0:
        raise NVMeError("bulk payload size must be positive")
    if pair_count <= 0:
        raise NVMeError("bulk pair count must be positive")
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.BULK_PUT
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.value_size = payload_size
    cmd.set_dword(13, pair_count)
    cmd.prp1 = prp.prp1
    cmd.prp2 = prp.prp2
    return cmd


def parse_bulk_put_command(cmd: NVMeCommand) -> tuple[int, int, int, int, int]:
    """(cid, payload_size, pair_count, prp1, prp2)."""
    if cmd.opcode is not KVOpcode.BULK_PUT:
        raise NVMeError(f"not a BULK_PUT command: {cmd.opcode.name}")
    return cmd.cid, cmd.value_size, cmd.get_dword(13), cmd.prp1, cmd.prp2
