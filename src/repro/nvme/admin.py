"""NVMe admin command set: IDENTIFY and GET/SET FEATURES.

The paper stresses that BandSlim "is not against the NVMe standard. It is
more of an NVMe-compatible proposal to keep its various utilities from
device identification to device management" (§1). This module is that
claim, executable: the simulated device answers IDENTIFY with a real
4096-byte controller data structure (standard fields at spec offsets, a
BandSlim capability block in the vendor-specific area) and exposes the
adaptive-transfer thresholds as vendor feature IDs, settable at runtime
through ordinary admin commands.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import NVMeError
from repro.nvme.command import NVMeCommand
from repro.units import MEM_PAGE_SIZE

#: Size of the IDENTIFY controller data structure (NVMe base spec).
IDENTIFY_DATA_SIZE = 4096

#: PCI vendor id reported by the simulated device (SK hynix, the paper's
#: industrial collaborator).
VENDOR_ID = 0x1C5C

#: Offset of the vendor-specific area inside the identify structure.
VENDOR_AREA_OFFSET = 3072

_VENDOR_MAGIC = b"BSLM"


class AdminOpcode(enum.IntEnum):
    """Admin submission opcodes handled by the simulated controller."""

    GET_LOG_PAGE = 0x02
    IDENTIFY = 0x06
    SET_FEATURES = 0x09
    GET_FEATURES = 0x0A


class FeatureId(enum.IntEnum):
    """Vendor-specific feature identifiers (0xC0+ range)."""

    #: α·threshold₁ decision point, bytes (piggyback ↔ PRP).
    THRESHOLD1 = 0xC0
    #: β·threshold₂ decision point, bytes (hybrid tail ↔ PRP).
    THRESHOLD2 = 0xC1
    #: α coefficient, fixed-point ×1000.
    ALPHA_MILLI = 0xC2
    #: β coefficient, fixed-point ×1000.
    BETA_MILLI = 0xC3


@dataclass(frozen=True)
class BandSlimCapabilities:
    """The vendor capability block advertised via IDENTIFY."""

    write_piggyback_capacity: int
    transfer_piggyback_capacity: int
    nand_page_size: int
    buffer_entries: int
    dlt_capacity: int
    transfer_mode: str
    packing_policy: str
    threshold1: int
    threshold2: int


# --- identify data structure ------------------------------------------------

_SN = b"BANDSLIM-SIM-0001   "  # 20 bytes
_MN = b"BandSlim KV-SSD behavioral simulator    "  # 40 bytes
_FR = b"1.0.0   "  # 8 bytes


def build_identify_data(caps: BandSlimCapabilities) -> bytes:
    """Serialize the 4096-byte IDENTIFY controller structure."""
    data = bytearray(IDENTIFY_DATA_SIZE)
    struct.pack_into("<H", data, 0, VENDOR_ID)       # VID
    struct.pack_into("<H", data, 2, VENDOR_ID)       # SSVID
    data[4:24] = _SN
    data[24:64] = _MN
    data[64:72] = _FR
    data[77] = 5  # MDTS: 2^5 * 4 KiB = 128 KiB max transfer
    # Vendor-specific capability block.
    pos = VENDOR_AREA_OFFSET
    data[pos : pos + 4] = _VENDOR_MAGIC
    mode = caps.transfer_mode.encode("ascii")[:15]
    policy = caps.packing_policy.encode("ascii")[:15]
    struct.pack_into(
        "<HHIIIII15sx15sx",
        data,
        pos + 4,
        caps.write_piggyback_capacity,
        caps.transfer_piggyback_capacity,
        caps.nand_page_size,
        caps.buffer_entries,
        caps.dlt_capacity,
        caps.threshold1,
        caps.threshold2,
        mode,
        policy,
    )
    return bytes(data)


def parse_identify_data(data: bytes) -> BandSlimCapabilities:
    """Host side: decode the capability block out of identify data."""
    if len(data) < IDENTIFY_DATA_SIZE:
        raise NVMeError(
            f"identify data must be {IDENTIFY_DATA_SIZE} bytes, got {len(data)}"
        )
    pos = VENDOR_AREA_OFFSET
    if data[pos : pos + 4] != _VENDOR_MAGIC:
        raise NVMeError("identify data lacks the BandSlim capability block")
    (
        write_cap,
        transfer_cap,
        nand_page,
        buffer_entries,
        dlt_capacity,
        threshold1,
        threshold2,
        mode,
        policy,
    ) = struct.unpack_from("<HHIIIII15sx15sx", data, pos + 4)
    return BandSlimCapabilities(
        write_piggyback_capacity=write_cap,
        transfer_piggyback_capacity=transfer_cap,
        nand_page_size=nand_page,
        buffer_entries=buffer_entries,
        dlt_capacity=dlt_capacity,
        transfer_mode=mode.rstrip(b"\x00").decode("ascii"),
        packing_policy=policy.rstrip(b"\x00").decode("ascii"),
        threshold1=threshold1,
        threshold2=threshold2,
    )


def identify_vendor_fields(data: bytes) -> dict[str, str]:
    """Decode the standard string fields (SN/MN/FR) for display."""
    return {
        "vid": f"{struct.unpack_from('<H', data, 0)[0]:#06x}",
        "serial": data[4:24].decode("ascii").strip(),
        "model": data[24:64].decode("ascii").strip(),
        "firmware": data[64:72].decode("ascii").strip(),
    }


# --- admin command builders/parsers -------------------------------------------

#: CNS value selecting the controller data structure.
CNS_CONTROLLER = 0x01

#: Vendor log page id: device statistics.
LOG_PAGE_STATS = 0xC0

#: Fields of the statistics log page, in serialization order (u64 each).
STATS_LOG_FIELDS: tuple[str, ...] = (
    "nand_page_programs",
    "nand_page_reads",
    "nand_block_erases",
    "buffer_flushes",
    "buffer_forced_flushes",
    "lsm_flushes",
    "lsm_compactions",
    "memcpy_bytes",
    "commands_processed",
)

STATS_LOG_SIZE = MEM_PAGE_SIZE  # one page, mostly reserved


def build_stats_log(values: dict[str, int]) -> bytes:
    """Serialize the vendor statistics log page."""
    data = bytearray(STATS_LOG_SIZE)
    data[0:4] = _VENDOR_MAGIC
    for i, field_name in enumerate(STATS_LOG_FIELDS):
        struct.pack_into("<Q", data, 8 + i * 8, int(values.get(field_name, 0)))
    return bytes(data)


def parse_stats_log(data: bytes) -> dict[str, int]:
    """Host side: decode the statistics log page."""
    if len(data) < STATS_LOG_SIZE:
        raise NVMeError(f"stats log must be {STATS_LOG_SIZE} bytes")
    if data[0:4] != _VENDOR_MAGIC:
        raise NVMeError("stats log lacks the BandSlim magic")
    return {
        field_name: struct.unpack_from("<Q", data, 8 + i * 8)[0]
        for i, field_name in enumerate(STATS_LOG_FIELDS)
    }


def build_get_log_page_command(
    cid: int, prp1: int, prp2: int, log_id: int = LOG_PAGE_STATS
) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.raw[0] = int(AdminOpcode.GET_LOG_PAGE)
    cmd.cid = cid
    cmd.prp1 = prp1
    cmd.prp2 = prp2
    cmd.set_dword(10, log_id & 0xFF)
    return cmd


def build_identify_command(cid: int, prp1: int, prp2: int,
                           cns: int = CNS_CONTROLLER) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.raw[0] = int(AdminOpcode.IDENTIFY)
    cmd.cid = cid
    cmd.prp1 = prp1
    cmd.prp2 = prp2
    cmd.set_dword(10, cns)
    return cmd


def build_set_features_command(cid: int, fid: FeatureId, value: int) -> NVMeCommand:
    if not 0 <= value < 2**32:
        raise NVMeError(f"feature value {value} out of 32-bit range")
    cmd = NVMeCommand()
    cmd.raw[0] = int(AdminOpcode.SET_FEATURES)
    cmd.cid = cid
    cmd.set_dword(10, int(fid))
    cmd.set_dword(11, value)
    return cmd


def build_get_features_command(cid: int, fid: FeatureId) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.raw[0] = int(AdminOpcode.GET_FEATURES)
    cmd.cid = cid
    cmd.set_dword(10, int(fid))
    return cmd


@dataclass(frozen=True)
class ParsedAdmin:
    opcode: AdminOpcode
    cid: int
    cdw10: int
    cdw11: int
    prp1: int
    prp2: int


def parse_admin_command(cmd: NVMeCommand) -> ParsedAdmin:
    try:
        opcode = AdminOpcode(cmd.raw[0])
    except ValueError:
        raise NVMeError(f"unknown admin opcode {cmd.raw[0]:#x}") from None
    return ParsedAdmin(
        opcode=opcode,
        cid=cmd.cid,
        cdw10=cmd.get_dword(10),
        cdw11=cmd.get_dword(11),
        prp1=cmd.prp1,
        prp2=cmd.prp2,
    )
