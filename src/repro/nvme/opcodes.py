"""NVMe Key-Value command set opcodes, plus BandSlim's vendor extensions.

Standard opcodes follow the NVM Express Key Value Command Set Specification
(TP 4076); BandSlim's write/transfer pair lives in the vendor-specific
opcode range (0x80–0xFF), consistent with the paper's claim that the design
"is not against the NVMe standard" (§1) — it repurposes reserved fields and
vendor opcodes rather than altering the protocol.
"""

from __future__ import annotations

import enum


class KVOpcode(enum.IntEnum):
    """I/O command opcodes understood by the simulated KV-SSD."""

    # --- NVMe KV command set (standard) -----------------------------------
    #: Flush: everything acked before this command is durable when it
    #: completes (NVMe base spec semantics, reused by the KV command set).
    FLUSH = 0x00
    #: Store a KV pair; value carried via PRP page-unit DMA (the Baseline).
    KV_STORE = 0x01
    #: Retrieve a value into host pages described by PRP.
    KV_RETRIEVE = 0x02
    #: List keys (backs the SEEK/NEXT iterator API).
    KV_LIST = 0x06
    #: Delete a KV pair.
    KV_DELETE = 0x10
    #: Existence probe.
    KV_EXIST = 0x14

    # --- BandSlim vendor extensions (§3.2, Figure 6) -----------------------
    #: Initial write command: key + metadata + up to 35 piggybacked bytes.
    #: May also carry a PRP for the page-unit part of a hybrid transfer.
    BANDSLIM_WRITE = 0x81
    #: Trailing transfer command: 56 piggybacked bytes, no key/metadata.
    BANDSLIM_TRANSFER = 0x82
    #: Host-side-batched bulk PUT (the Dotori/KV-CSD-style comparator the
    #: paper argues against in §1; implemented for the ablation).
    BULK_PUT = 0x83
    #: Device-side iterator commands (the SEEK/NEXT interface of the
    #: underlying iterator-extended KV-SSD [22]).
    ITER_OPEN = 0x84
    ITER_NEXT = 0x85
    ITER_CLOSE = 0x86

    @property
    def is_vendor(self) -> bool:
        return self.value >= 0x80

    @property
    def is_write_class(self) -> bool:
        """Commands that mutate the store."""
        return self in (
            KVOpcode.KV_STORE,
            KVOpcode.KV_DELETE,
            KVOpcode.BANDSLIM_WRITE,
            KVOpcode.BANDSLIM_TRANSFER,
            KVOpcode.BULK_PUT,
        )


class CommandFlags(enum.IntFlag):
    """Bits of the flags byte (the 'P'/'F' bits in the paper's Figure 6)."""

    NONE = 0
    #: P — the command carries piggybacked value bytes.
    PIGGYBACK = 0x01
    #: F — final fragment: no further transfer commands follow.
    FINAL = 0x02
    #: H — hybrid: this write command's PRP moves the page-aligned head of
    #: the value; the tail arrives piggybacked in transfer commands.
    HYBRID = 0x04


class StatusCode(enum.IntEnum):
    """Completion status codes (subset sufficient for the simulation)."""

    SUCCESS = 0x00
    INVALID_OPCODE = 0x01
    INVALID_FIELD = 0x02
    #: Unrecoverable device condition (bad-block spare pool exhausted, …).
    #: Not retryable: the host should fail the operation upward.
    INTERNAL_ERROR = 0x06
    KEY_NOT_FOUND = 0x87
    CAPACITY_EXCEEDED = 0x81
    #: Media failure the device could not recover in place (uncorrectable
    #: read, program/erase recovery dead-end). Retryable: read-retry
    #: re-samples transient noise, so a host retry often succeeds.
    MEDIA_ERROR = 0x82
    #: Transient device-side condition (e.g. a PCIe payload transfer was
    #: rejected by CRC). Retryable after backoff.
    DEVICE_BUSY = 0x83

    @property
    def retryable(self) -> bool:
        """Statuses a host driver may retry with backoff."""
        return self in (StatusCode.MEDIA_ERROR, StatusCode.DEVICE_BUSY)
