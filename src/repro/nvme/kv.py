"""Builders and parsers for the KV command set (driver ⇄ controller ABI).

The driver *builds* 64-byte commands; the controller *parses* the same
bytes back. Tests round-trip every field through the wire format, so a
layout mistake cannot hide behind out-of-band state.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CommandFieldError, NVMeError
from repro.nvme.command import (
    NVMeCommand,
    new_kv_command,
    pack_transfer_piggyback,
    pack_write_piggyback,
    transfer_piggyback_capacity,
    unpack_transfer_piggyback,
    unpack_write_piggyback,
    write_piggyback_capacity,
)
from repro.nvme.opcodes import CommandFlags, KVOpcode
from repro.nvme.prp import PRPDescriptor

#: Public names for the two capacities (paper §3.2: 35 and 56 bytes).
WRITE_PIGGYBACK_CAPACITY = write_piggyback_capacity()
TRANSFER_PIGGYBACK_CAPACITY = transfer_piggyback_capacity()

# Parse-path constants: the parsers run once per command on the controller's
# hot path, so they test the raw opcode/flag bytes against plain ints instead
# of constructing enum members per call.
_OP_STORE = int(KVOpcode.KV_STORE)
_OP_RETRIEVE = int(KVOpcode.KV_RETRIEVE)
_OP_WRITE = int(KVOpcode.BANDSLIM_WRITE)
_OP_TRANSFER = int(KVOpcode.BANDSLIM_TRANSFER)
_F_PIGGYBACK = int(CommandFlags.PIGGYBACK)
_F_FINAL = int(CommandFlags.FINAL)
_F_HYBRID = int(CommandFlags.HYBRID)


# --------------------------------------------------------------------------
# Builders (driver side)
# --------------------------------------------------------------------------

def build_store_command(
    cid: int,
    key: bytes,
    value_size: int,
    prp: PRPDescriptor,
    nsid: int = 1,
) -> NVMeCommand:
    """Baseline KV_STORE: value travels entirely via PRP page-unit DMA."""
    if value_size <= 0:
        raise NVMeError(f"store of non-positive value size {value_size}")
    cmd = new_kv_command(_OP_STORE, cid, nsid, value_size)
    cmd.key = key
    struct.pack_into("<QQ", cmd.raw, 24, prp.prp1, prp.prp2)
    return cmd


def build_retrieve_command(
    cid: int,
    key: bytes,
    buffer_size: int,
    prp: PRPDescriptor,
    nsid: int = 1,
) -> NVMeCommand:
    """KV_RETRIEVE: device DMAs the value into the described host pages."""
    if buffer_size <= 0:
        raise NVMeError(f"retrieve with non-positive buffer size {buffer_size}")
    cmd = new_kv_command(_OP_RETRIEVE, cid, nsid, buffer_size)
    cmd.key = key
    struct.pack_into("<QQ", cmd.raw, 24, prp.prp1, prp.prp2)
    return cmd


def build_write_command(
    cid: int,
    key: bytes,
    value_size: int,
    inline: bytes = b"",
    prp: PRPDescriptor | None = None,
    final: bool = False,
    nsid: int = 1,
) -> NVMeCommand:
    """BandSlim write command (Figure 6a).

    ``inline`` rides in the 35-byte piggyback area; ``prp`` (hybrid mode)
    describes the page-aligned head of the value. The two are mutually
    exclusive because the piggyback area overlays the PRP fields.
    """
    if value_size <= 0:
        raise NVMeError(f"write of non-positive value size {value_size}")
    if inline and prp is not None:
        raise NVMeError(
            "write command cannot piggyback and carry a PRP: the piggyback "
            "area overlays the PRP fields (Figure 6a)"
        )
    if len(inline) > WRITE_PIGGYBACK_CAPACITY:
        raise CommandFieldError(
            f"inline fragment {len(inline)} exceeds write capacity "
            f"{WRITE_PIGGYBACK_CAPACITY}"
        )
    cmd = new_kv_command(_OP_WRITE, cid, nsid, value_size)
    cmd.key = key
    flags = 0
    if inline:
        flags |= _F_PIGGYBACK
        pack_write_piggyback(cmd, inline)
    if prp is not None:
        flags |= _F_HYBRID
        struct.pack_into("<QQ", cmd.raw, 24, prp.prp1, prp.prp2)
    if final:
        flags |= _F_FINAL
    cmd.raw[1] = flags
    return cmd


def build_transfer_command(
    cid: int,
    fragment: bytes,
    final: bool,
    nsid: int = 1,
) -> NVMeCommand:
    """BandSlim transfer command (Figure 6b): 56 bytes of pure payload."""
    if not fragment:
        raise NVMeError("transfer command with empty fragment")
    if len(fragment) > TRANSFER_PIGGYBACK_CAPACITY:
        raise CommandFieldError(
            f"fragment {len(fragment)} exceeds transfer capacity "
            f"{TRANSFER_PIGGYBACK_CAPACITY}"
        )
    cmd = new_kv_command(_OP_TRANSFER, cid, nsid, 0)
    cmd.raw[1] = _F_PIGGYBACK | _F_FINAL if final else _F_PIGGYBACK
    return_fragment_length_check(fragment)
    pack_transfer_piggyback(cmd, fragment)
    return cmd


def return_fragment_length_check(fragment: bytes) -> None:
    """Defensive check shared by transfer paths (fragment must be 1..56 B)."""
    if not 1 <= len(fragment) <= TRANSFER_PIGGYBACK_CAPACITY:
        raise CommandFieldError(f"bad fragment length {len(fragment)}")


def build_flush_command(cid: int, nsid: int = 1) -> NVMeCommand:
    """NVMe FLUSH: persist everything acked before this command.

    In crash-consistency mode the controller drains the NAND page buffer
    and MemTable, then writes a durable manifest checkpoint; a power cut
    after the completion can no longer lose any previously acked write.
    """
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.FLUSH
    cmd.cid = cid
    cmd.nsid = nsid
    return cmd


def build_delete_command(cid: int, key: bytes, nsid: int = 1) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.KV_DELETE
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.key = key
    return cmd


def build_exist_command(cid: int, key: bytes, nsid: int = 1) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.KV_EXIST
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.key = key
    return cmd


def build_list_command(
    cid: int, start_key: bytes, max_keys: int, prp: PRPDescriptor, nsid: int = 1
) -> NVMeCommand:
    """KV_LIST: keys >= start_key, up to max_keys, DMA'd to host pages."""
    if max_keys <= 0:
        raise NVMeError(f"list with non-positive max_keys {max_keys}")
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.KV_LIST
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.key = start_key
    cmd.value_size = max_keys
    cmd.prp1 = prp.prp1
    cmd.prp2 = prp.prp2
    return cmd


# --------------------------------------------------------------------------
# Parsers (controller side)
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ParsedStore:
    cid: int
    key: bytes
    value_size: int
    prp1: int
    prp2: int


@dataclass(frozen=True, slots=True)
class ParsedWrite:
    cid: int
    key: bytes
    value_size: int
    inline: bytes
    hybrid: bool
    final: bool
    prp1: int
    prp2: int

    @property
    def expected_trailing_bytes(self) -> int:
        """Value bytes still to arrive via transfer commands."""
        already = len(self.inline)
        if self.hybrid:
            # The PRP moved the page-aligned head; trailing commands carry
            # the sub-page tail. The head size is implied by value_size:
            # the largest page multiple strictly inside the value.
            from repro.units import MEM_PAGE_SIZE, align_down

            already += align_down(self.value_size, MEM_PAGE_SIZE)
        return max(0, self.value_size - already)


@dataclass(frozen=True, slots=True)
class ParsedTransfer:
    cid: int
    final: bool
    #: Full 56-byte area; the controller slices the live prefix using its
    #: per-command remaining-byte state (fragment length is not on the wire).
    area: bytes


@dataclass(frozen=True, slots=True)
class ParsedRetrieve:
    cid: int
    key: bytes
    buffer_size: int
    prp1: int
    prp2: int


def parse_store_command(cmd: NVMeCommand) -> ParsedStore:
    if cmd.raw[0] != _OP_STORE:
        raise NVMeError(f"not a KV_STORE command: {cmd.opcode.name}")
    return ParsedStore(
        cid=cmd.cid,
        key=cmd.key,
        value_size=cmd.value_size,
        prp1=cmd.prp1,
        prp2=cmd.prp2,
    )


def parse_write_command(cmd: NVMeCommand) -> ParsedWrite:
    if cmd.raw[0] != _OP_WRITE:
        raise NVMeError(f"not a BANDSLIM_WRITE command: {cmd.opcode.name}")
    flags = cmd.raw[1]
    hybrid = bool(flags & _F_HYBRID)
    inline = b""
    if flags & _F_PIGGYBACK:
        if hybrid:
            raise NVMeError("write command flags claim both piggyback and hybrid")
        inline = unpack_write_piggyback(
            cmd, min(cmd.value_size, WRITE_PIGGYBACK_CAPACITY)
        )
    return ParsedWrite(
        cid=cmd.cid,
        key=cmd.key,
        value_size=cmd.value_size,
        inline=inline,
        hybrid=hybrid,
        final=bool(flags & _F_FINAL),
        prp1=cmd.prp1 if hybrid else 0,
        prp2=cmd.prp2 if hybrid else 0,
    )


def parse_transfer_command(cmd: NVMeCommand) -> ParsedTransfer:
    if cmd.raw[0] != _OP_TRANSFER:
        raise NVMeError(f"not a BANDSLIM_TRANSFER command: {cmd.opcode.name}")
    return ParsedTransfer(
        cid=cmd.cid,
        final=bool(cmd.raw[1] & _F_FINAL),
        area=unpack_transfer_piggyback(cmd, TRANSFER_PIGGYBACK_CAPACITY),
    )


def parse_retrieve_command(cmd: NVMeCommand) -> ParsedRetrieve:
    if cmd.raw[0] != _OP_RETRIEVE:
        raise NVMeError(f"not a KV_RETRIEVE command: {cmd.opcode.name}")
    return ParsedRetrieve(
        cid=cmd.cid,
        key=cmd.key,
        buffer_size=cmd.value_size,
        prp1=cmd.prp1,
        prp2=cmd.prp2,
    )
