"""Scatter-Gather List support, and why BandSlim does not use it.

NVMe's SGL can describe byte-granular segments, which sounds like the fix
for PRP's page-unit amplification — but the paper (§2.5) notes that SGL
setup cost outweighs its benefit below 32 KiB, and the Linux kernel
enforces exactly that threshold (``sgl_threshold`` in
``drivers/nvme/host/pci.c``). We implement SGL descriptors so that the
decision is executable: :func:`sgl_is_beneficial` is the kernel's policy,
and the driver consults it (and, for every KV-sized value, gets "no").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NVMeError
from repro.memory.host import HostBuffer
from repro.units import KIB

#: The Linux kernel's default ``sgl_threshold``: transfers below this use PRP.
SGL_MIN_TRANSFER = 32 * KIB

#: Size of one SGL data-block descriptor (address + length + type).
SGL_DESCRIPTOR_SIZE = 16


@dataclass(frozen=True)
class SGLSegment:
    """One byte-granular segment: (address, length)."""

    addr: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise NVMeError(f"SGL segment length must be positive, got {self.length}")
        if self.addr < 0:
            raise NVMeError(f"SGL segment address must be non-negative")


@dataclass(frozen=True)
class SGLDescriptor:
    """A (simplified, single-level) scatter-gather list."""

    segments: tuple[SGLSegment, ...]

    @property
    def total_length(self) -> int:
        return sum(seg.length for seg in self.segments)

    @property
    def descriptor_bytes(self) -> int:
        """Bytes of descriptor metadata the device must fetch."""
        return len(self.segments) * SGL_DESCRIPTOR_SIZE


def build_sgl(buf: HostBuffer) -> SGLDescriptor:
    """Describe a staged buffer with byte-exact SGL segments.

    Unlike PRP, the final segment's length is the value's true remainder —
    no page padding. Kept for protocol completeness and the threshold
    ablation; the BandSlim driver never selects it for KV-sized values.
    """
    if buf.length == 0:
        raise NVMeError("cannot build SGL for an empty buffer")
    segments: list[SGLSegment] = []
    remaining = buf.length
    for page in buf.pages:
        take = min(remaining, len(page.data))
        segments.append(SGLSegment(addr=page.addr, length=take))
        remaining -= take
    if remaining != 0:
        raise NVMeError(f"buffer pages do not cover length {buf.length}")
    return SGLDescriptor(segments=tuple(segments))


def sgl_is_beneficial(transfer_bytes: int, threshold: int = SGL_MIN_TRANSFER) -> bool:
    """The kernel's ``sgl_threshold`` policy: SGL only at/above 32 KiB."""
    if transfer_bytes < 0:
        raise ValueError(f"transfer_bytes must be non-negative, got {transfer_bytes}")
    return transfer_bytes >= threshold
