"""Device-side iterator commands (SEEK/NEXT, after the KV-SSD of [22]).

BandSlim is built on an "Iterator Interface Extended LSM-tree-based KVSSD"
(Lee et al., SYSTOR '23 — the paper's [22]): range queries open a cursor
*on the device* and pull batches of (key, value) pairs back, instead of the
host issuing one GET per key. Three vendor opcodes implement it here:

* ``ITER_OPEN``  — start key in the key field; CQE result = iterator id;
* ``ITER_NEXT``  — iterator id in dword 13, a PRP buffer for the batch;
  the device fills it with packed records and returns the count (result),
  setting the CQE's ``result``'s high bit when the iteration is exhausted;
* ``ITER_CLOSE`` — releases the cursor.

Batch wire format (same record shape as bulk PUT)::

    batch  := count:u32  record*
    record := klen:u8  key  vlen:u32  value
"""

from __future__ import annotations

import struct

from repro.errors import NVMeError
from repro.nvme.command import NVMeCommand
from repro.nvme.opcodes import KVOpcode
from repro.nvme.prp import PRPDescriptor

_HEADER = struct.Struct("<I")
_VLEN = struct.Struct("<I")

#: High bit of the CQE result signals "no more keys".
ITER_EXHAUSTED_FLAG = 1 << 31


def build_iter_open_command(cid: int, start_key: bytes, nsid: int = 1) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.ITER_OPEN
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.key = start_key if start_key else b"\x00"
    return cmd


def build_iter_next_command(
    cid: int, iterator_id: int, buffer_size: int, prp: PRPDescriptor, nsid: int = 1
) -> NVMeCommand:
    if buffer_size <= 0:
        raise NVMeError("iterator batch buffer must be positive")
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.ITER_NEXT
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.set_dword(13, iterator_id)  # dword 10 carries the buffer size
    cmd.value_size = buffer_size
    cmd.prp1 = prp.prp1
    cmd.prp2 = prp.prp2
    return cmd


def build_iter_close_command(cid: int, iterator_id: int, nsid: int = 1) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.ITER_CLOSE
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.set_dword(13, iterator_id)
    return cmd


def pack_batch(pairs: list[tuple[bytes, bytes]], capacity: int) -> tuple[bytes, int]:
    """Serialize as many pairs as fit in ``capacity``; returns (blob, taken)."""
    out = bytearray(_HEADER.size)
    taken = 0
    for key, value in pairs:
        record = bytes([len(key)]) + key + _VLEN.pack(len(value)) + value
        if len(out) + len(record) > capacity:
            break
        out += record
        taken += 1
    _HEADER.pack_into(out, 0, taken)
    return bytes(out), taken


def unpack_batch(blob: bytes) -> list[tuple[bytes, bytes]]:
    """Host side: parse a batch buffer back into pairs."""
    if len(blob) < _HEADER.size:
        raise NVMeError("iterator batch shorter than its header")
    (count,) = _HEADER.unpack_from(blob, 0)
    pos = _HEADER.size
    pairs = []
    for _ in range(count):
        klen = blob[pos]
        pos += 1
        key = blob[pos : pos + klen]
        pos += klen
        (vlen,) = _VLEN.unpack_from(blob, pos)
        pos += _VLEN.size
        value = blob[pos : pos + vlen]
        pos += vlen
        if len(key) != klen or len(value) != vlen:
            raise NVMeError("iterator batch truncated")
        pairs.append((key, value))
    return pairs
