"""Device-side iterator commands (SEEK/NEXT, after the KV-SSD of [22]).

BandSlim is built on an "Iterator Interface Extended LSM-tree-based KVSSD"
(Lee et al., SYSTOR '23 — the paper's [22]): range queries open a cursor
*on the device* and pull batches of (key, value) pairs back, instead of the
host issuing one GET per key. Three vendor opcodes implement it here:

* ``ITER_OPEN``  — start key in the key field; CQE result = iterator id;
* ``ITER_NEXT``  — iterator id in dword 13, a PRP buffer for the batch;
  the device fills it with packed records and returns the count (result),
  setting the CQE's ``result``'s high bit when the iteration is exhausted;
* ``ITER_CLOSE`` — releases the cursor.

Batch wire format (same record shape as bulk PUT)::

    batch  := count:u32  record*
    record := klen:u8  key  vlen:u32  value
"""

from __future__ import annotations

import struct

from repro.errors import NVMeError
from repro.nvme.command import NVMeCommand
from repro.nvme.opcodes import KVOpcode
from repro.nvme.prp import PRPDescriptor

_HEADER = struct.Struct("<I")
_VLEN = struct.Struct("<I")

#: High bit of the CQE result signals "no more keys".
ITER_EXHAUSTED_FLAG = 1 << 31


def build_iter_open_command(cid: int, start_key: bytes, nsid: int = 1) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.ITER_OPEN
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.key = start_key if start_key else b"\x00"
    return cmd


def build_iter_next_command(
    cid: int, iterator_id: int, buffer_size: int, prp: PRPDescriptor, nsid: int = 1
) -> NVMeCommand:
    if buffer_size <= 0:
        raise NVMeError("iterator batch buffer must be positive")
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.ITER_NEXT
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.set_dword(13, iterator_id)  # dword 10 carries the buffer size
    cmd.value_size = buffer_size
    cmd.prp1 = prp.prp1
    cmd.prp2 = prp.prp2
    return cmd


def build_iter_close_command(cid: int, iterator_id: int, nsid: int = 1) -> NVMeCommand:
    cmd = NVMeCommand()
    cmd.opcode = KVOpcode.ITER_CLOSE
    cmd.cid = cid
    cmd.nsid = nsid
    cmd.set_dword(13, iterator_id)
    return cmd


def pack_batch(pairs: list[tuple[bytes, bytes]], capacity: int) -> tuple[bytes, int]:
    """Serialize as many pairs as fit in ``capacity``; returns (blob, taken)."""
    out = bytearray(_HEADER.size)
    taken = 0
    for key, value in pairs:
        record = bytes([len(key)]) + key + _VLEN.pack(len(value)) + value
        if len(out) + len(record) > capacity:
            break
        out += record
        taken += 1
    _HEADER.pack_into(out, 0, taken)
    return bytes(out), taken


class ScanReadahead:
    """Host-side scan cursor that resolves values with pipelined GETs.

    The plain host scan (``KVIterator``) resolves each listed key with a
    synchronous GET — two serial NAND reads (index probe + value page)
    per pair. This cursor instead resolves a whole LIST batch with one
    :meth:`~repro.core.driver.BandSlimDriver.get_many` call, so the reads
    of consecutive keys overlap across ways and, under the packed
    layouts, coalesce onto shared page senses (see
    docs/parallel-timing.md).

    Resume semantics are identical to ``KVIterator``: resume from the
    last returned key *inclusive* and drop the duplicate, so
    maximum-length keys never overflow the key field; keys deleted
    between the LIST and the GET batch are skipped.
    """

    def __init__(
        self,
        driver,
        start_key: bytes,
        batch_keys: int = 32,
        max_value_bytes: int | None = None,
    ) -> None:
        if batch_keys < 2:
            raise NVMeError(f"readahead batch must be >= 2 keys, got {batch_keys}")
        self.driver = driver
        self.batch_keys = batch_keys
        self._max_value_bytes = max_value_bytes
        self._pending: list[tuple[bytes, bytes]] = []
        self._resume_key = start_key or b"\x00"
        self._last_returned: bytes | None = None
        self._exhausted = False

    def _refill(self) -> None:
        if self._exhausted:
            return
        keys = self.driver.list_keys(self._resume_key, max_keys=self.batch_keys)
        if keys and keys[0] == self._last_returned:
            keys = keys[1:]
        if not keys:
            self._exhausted = True
            return
        self._last_returned = keys[-1]
        self._resume_key = keys[-1]
        if len(keys) < self.batch_keys - 1:
            self._exhausted = True
        results = self.driver.get_many(keys, max_size=self._max_value_bytes)
        # A key deleted between LIST and GET resolves to KEY_NOT_FOUND
        # (value None) — skip it, exactly as the QD1 iterator does.
        self._pending = [
            (key, result.value)
            for key, result in zip(keys, results)
            if result.value is not None
        ]

    def next(self) -> tuple[bytes, bytes] | None:
        """The following (key, value) pair, or None at end of keyspace."""
        while not self._pending:
            if self._exhausted:
                return None
            self._refill()
        return self._pending.pop(0)

    def __iter__(self):
        while True:
            pair = self.next()
            if pair is None:
                return
            yield pair


def unpack_batch(blob: bytes) -> list[tuple[bytes, bytes]]:
    """Host side: parse a batch buffer back into pairs."""
    if len(blob) < _HEADER.size:
        raise NVMeError("iterator batch shorter than its header")
    (count,) = _HEADER.unpack_from(blob, 0)
    pos = _HEADER.size
    pairs = []
    for _ in range(count):
        klen = blob[pos]
        pos += 1
        key = blob[pos : pos + klen]
        pos += klen
        (vlen,) = _VLEN.unpack_from(blob, pos)
        pos += _VLEN.size
        value = blob[pos : pos + vlen]
        pos += vlen
        if len(key) != klen or len(value) != vlen:
            raise NVMeError("iterator batch truncated")
        pairs.append((key, value))
    return pairs
