"""NVMe substrate: 64-byte commands, KV command set, queues, PRP/SGL."""

from repro.nvme.command import NVMeCommand
from repro.nvme.kv import (
    WRITE_PIGGYBACK_CAPACITY,
    TRANSFER_PIGGYBACK_CAPACITY,
    build_retrieve_command,
    build_store_command,
    build_transfer_command,
    build_write_command,
    parse_retrieve_command,
    parse_store_command,
    parse_transfer_command,
    parse_write_command,
)
from repro.nvme.opcodes import KVOpcode
from repro.nvme.prp import PRPDescriptor, build_prp
from repro.nvme.queue import CompletionQueue, NVMeCompletion, SubmissionQueue
from repro.nvme.sgl import SGL_MIN_TRANSFER, SGLDescriptor, build_sgl, sgl_is_beneficial

__all__ = [
    "NVMeCommand",
    "KVOpcode",
    "WRITE_PIGGYBACK_CAPACITY",
    "TRANSFER_PIGGYBACK_CAPACITY",
    "build_store_command",
    "build_retrieve_command",
    "build_write_command",
    "build_transfer_command",
    "parse_store_command",
    "parse_retrieve_command",
    "parse_write_command",
    "parse_transfer_command",
    "PRPDescriptor",
    "build_prp",
    "SGLDescriptor",
    "build_sgl",
    "sgl_is_beneficial",
    "SGL_MIN_TRANSFER",
    "SubmissionQueue",
    "CompletionQueue",
    "NVMeCompletion",
]
