"""The 64-byte NVMe submission queue entry, encoded for real.

Fidelity matters here: the whole point of BandSlim's fine-grained transfer
is that a value can ride inside the command itself, so the simulator
round-trips actual bytes through the actual dword layout of the paper's
Figure 6. The controller decodes the same 64 bytes the driver encoded —
nothing is passed "out of band".

Dword map (write command, Figure 6a; standard NVMe field positions):

====== ==========================================================
dword  contents
====== ==========================================================
0      opcode (byte 0) | flags P/F/H (byte 1) | commandID (bytes 2–3)
1      namespaceID
2–3    key bytes 0–7
4–5    metadata pointer — **piggyback bytes 0–7**
6–7    PRP entry 1      — **piggyback bytes 8–15**
8–9    PRP entry 2      — **piggyback bytes 16–23**
10     valueSize
11     keySize (byte 44) | reserved ×2 — **piggyback 24–25** | option — **26**
12–13  reserved         — **piggyback bytes 27–34**
14–15  key bytes 8–15
====== ==========================================================

giving the paper's 35-byte write-command piggyback capacity. The transfer
command (Figure 6b) keeps only dword0 (opcode/CID) and dword1 (namespaceID),
freeing dwords 2–15 = 56 bytes.
"""

from __future__ import annotations

import struct

from repro.errors import CommandFieldError
from repro.nvme.opcodes import CommandFlags, KVOpcode
from repro.units import NVME_COMMAND_SIZE

#: Byte ranges (start, length) composing the write-command piggyback area,
#: in canonical piggyback order. 24 + 2 + 1 + 8 = 35 bytes (paper §3.2).
WRITE_PIGGYBACK_RANGES: tuple[tuple[int, int], ...] = (
    (16, 24),  # dwords 4–9: metadata pointer + both PRP entries
    (45, 2),   # dword 11: reserved bytes after keySize
    (47, 1),   # dword 11: vendor option byte
    (48, 8),   # dwords 12–13: reserved
)

#: Transfer command piggyback area: dwords 2–15.
TRANSFER_PIGGYBACK_RANGE: tuple[int, int] = (8, 56)

#: Maximum key the KV command format can carry (dwords 2–3 and 14–15).
MAX_KEY_BYTES = 16


class NVMeCommand:
    """A 64-byte submission queue entry with typed field accessors."""

    __slots__ = ("raw",)

    def __init__(self, raw: bytes | bytearray | None = None) -> None:
        if raw is None:
            self.raw = bytearray(NVME_COMMAND_SIZE)
        else:
            if len(raw) != NVME_COMMAND_SIZE:
                raise CommandFieldError(
                    f"NVMe command must be {NVME_COMMAND_SIZE} bytes, got {len(raw)}"
                )
            self.raw = bytearray(raw)

    # --- dword/byte primitives ---------------------------------------------

    def get_dword(self, index: int) -> int:
        if not 0 <= index < 16:
            raise CommandFieldError(f"dword index {index} out of range")
        return struct.unpack_from("<I", self.raw, index * 4)[0]

    def set_dword(self, index: int, value: int) -> None:
        if not 0 <= index < 16:
            raise CommandFieldError(f"dword index {index} out of range")
        if not 0 <= value < 2**32:
            raise CommandFieldError(f"dword value {value:#x} out of range")
        struct.pack_into("<I", self.raw, index * 4, value)

    def get_bytes(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > NVME_COMMAND_SIZE:
            raise CommandFieldError(f"byte range [{offset}, {offset + length}) invalid")
        return bytes(self.raw[offset : offset + length])

    def set_bytes(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > NVME_COMMAND_SIZE:
            raise CommandFieldError(
                f"byte range [{offset}, {offset + len(data)}) invalid"
            )
        self.raw[offset : offset + len(data)] = data

    # --- dword0 ---------------------------------------------------------------

    @property
    def opcode(self) -> KVOpcode:
        try:
            return KVOpcode(self.raw[0])
        except ValueError:
            raise CommandFieldError(f"unknown opcode {self.raw[0]:#x}") from None

    @opcode.setter
    def opcode(self, value: KVOpcode) -> None:
        self.raw[0] = int(value)

    @property
    def flags(self) -> CommandFlags:
        return CommandFlags(self.raw[1])

    @flags.setter
    def flags(self, value: CommandFlags) -> None:
        self.raw[1] = int(value)

    @property
    def cid(self) -> int:
        return struct.unpack_from("<H", self.raw, 2)[0]

    @cid.setter
    def cid(self, value: int) -> None:
        if not 0 <= value < 2**16:
            raise CommandFieldError(f"commandID {value} out of range")
        struct.pack_into("<H", self.raw, 2, value)

    # --- dword1 ---------------------------------------------------------------

    @property
    def nsid(self) -> int:
        return self.get_dword(1)

    @nsid.setter
    def nsid(self, value: int) -> None:
        self.set_dword(1, value)

    # --- key (dwords 2–3 and 14–15) --------------------------------------------

    @property
    def key_size(self) -> int:
        return self.raw[44]

    @key_size.setter
    def key_size(self, value: int) -> None:
        if not 0 < value <= MAX_KEY_BYTES:
            raise CommandFieldError(
                f"key size must be in 1..{MAX_KEY_BYTES}, got {value}"
            )
        self.raw[44] = value

    @property
    def key(self) -> bytes:
        raw = self.raw
        size = raw[44]
        if size <= 8:
            return bytes(raw[8 : 8 + size])
        return bytes(raw[8:16]) + bytes(raw[56 : 48 + size])

    @key.setter
    def key(self, value: bytes) -> None:
        size = len(value)
        if not 0 < size <= MAX_KEY_BYTES:
            raise CommandFieldError(
                f"key must be 1..{MAX_KEY_BYTES} bytes, got {size}"
            )
        raw = self.raw
        raw[8:16] = b"\x00\x00\x00\x00\x00\x00\x00\x00"
        raw[56:64] = b"\x00\x00\x00\x00\x00\x00\x00\x00"
        if size <= 8:
            raw[8 : 8 + size] = value
        else:
            raw[8:16] = value[:8]
            raw[56 : 48 + size] = value[8:]
        raw[44] = size

    # --- value size (dword 10) ---------------------------------------------------

    @property
    def value_size(self) -> int:
        return self.get_dword(10)

    @value_size.setter
    def value_size(self, value: int) -> None:
        self.set_dword(10, value)

    # --- PRP fields (dwords 6–9; only valid when not piggybacking there) ---------

    @property
    def prp1(self) -> int:
        return struct.unpack_from("<Q", self.raw, 24)[0]

    @prp1.setter
    def prp1(self, value: int) -> None:
        struct.pack_into("<Q", self.raw, 24, value)

    @property
    def prp2(self) -> int:
        return struct.unpack_from("<Q", self.raw, 32)[0]

    @prp2.setter
    def prp2(self, value: int) -> None:
        struct.pack_into("<Q", self.raw, 32, value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NVMeCommand) and self.raw == other.raw

    def __repr__(self) -> str:
        try:
            op = self.opcode.name
        except CommandFieldError:
            op = f"{self.raw[0]:#x}"
        return f"NVMeCommand(opcode={op}, cid={self.cid})"


def new_kv_command(opcode: int, cid: int, nsid: int, value_size: int) -> NVMeCommand:
    """Builder fast path: dword 0/1 and valueSize in two packed writes.

    Equivalent to setting ``opcode``/``cid``/``nsid``/``value_size`` through
    the typed accessors (flags start at 0), minus four property dispatches —
    every command the driver emits starts here.
    """
    if not 0 <= cid < 2**16:
        raise CommandFieldError(f"commandID {cid} out of range")
    cmd = NVMeCommand()
    raw = cmd.raw
    struct.pack_into("<BxHI", raw, 0, opcode, cid, nsid)
    struct.pack_into("<I", raw, 40, value_size)
    return cmd


def write_piggyback_capacity() -> int:
    """35 bytes: the write command's repurposable fields (paper §3.2)."""
    return sum(length for _, length in WRITE_PIGGYBACK_RANGES)


def transfer_piggyback_capacity() -> int:
    """56 bytes: everything but dwords 0–1 in a transfer command."""
    return TRANSFER_PIGGYBACK_RANGE[1]


def pack_write_piggyback(cmd: NVMeCommand, fragment: bytes) -> None:
    """Scatter ``fragment`` across the write command's piggyback ranges."""
    if len(fragment) > write_piggyback_capacity():
        raise CommandFieldError(
            f"write piggyback fragment of {len(fragment)} bytes exceeds "
            f"{write_piggyback_capacity()}"
        )
    pos = 0
    for offset, length in WRITE_PIGGYBACK_RANGES:
        chunk = fragment[pos : pos + length]
        if not chunk:
            break
        cmd.set_bytes(offset, chunk)
        pos += len(chunk)


def unpack_write_piggyback(cmd: NVMeCommand, nbytes: int) -> bytes:
    """Gather ``nbytes`` piggybacked bytes back out of a write command."""
    if nbytes > write_piggyback_capacity():
        raise CommandFieldError(
            f"cannot unpack {nbytes} bytes; capacity is {write_piggyback_capacity()}"
        )
    out = bytearray()
    remaining = nbytes
    for offset, length in WRITE_PIGGYBACK_RANGES:
        take = min(length, remaining)
        if take == 0:
            break
        out += cmd.get_bytes(offset, take)
        remaining -= take
    return bytes(out)


def pack_transfer_piggyback(cmd: NVMeCommand, fragment: bytes) -> None:
    """Place ``fragment`` in a transfer command's 56-byte area."""
    offset, capacity = TRANSFER_PIGGYBACK_RANGE
    if len(fragment) > capacity:
        raise CommandFieldError(
            f"transfer fragment of {len(fragment)} bytes exceeds {capacity}"
        )
    cmd.set_bytes(offset, fragment)


def unpack_transfer_piggyback(cmd: NVMeCommand, nbytes: int) -> bytes:
    offset, capacity = TRANSFER_PIGGYBACK_RANGE
    if nbytes > capacity:
        raise CommandFieldError(f"cannot unpack {nbytes} bytes; capacity is {capacity}")
    return cmd.get_bytes(offset, nbytes)
