"""Size units and alignment arithmetic used across the whole stack.

Every component of the simulated stack (PRP construction, DMA engine,
NAND page buffer, FTL) reasons in terms of the same three units:

* the host **memory page** (4 KiB) — the PRP/DMA transfer unit,
* the **NAND page** (16 KiB by default) — the flash program unit,
* the **NVMe command** (64 B) — the piggybacking vehicle.

Keeping the alignment helpers in one module means the 4 KiB assumption the
paper calls out (§2.3) lives in exactly one place.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Host memory page size; the PRP transfer unit (NVMe base spec).
MEM_PAGE_SIZE = 4 * KIB

#: NVMe submission queue entry size (NVMe base spec §4.2).
NVME_COMMAND_SIZE = 64

#: Default NAND page size used by the Cosmos+ OpenSSD module (paper §2.3).
DEFAULT_NAND_PAGE_SIZE = 16 * KIB

#: Doorbell register write size (one 32-bit MMIO store).
DOORBELL_WRITE_SIZE = 4

#: Completion queue entry size (NVMe base spec §4.6).
NVME_COMPLETION_SIZE = 16


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the nearest multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the nearest multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-value // alignment) * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """True when ``value`` is a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0


def pages_needed(nbytes: int, page_size: int = MEM_PAGE_SIZE) -> int:
    """Number of whole pages required to hold ``nbytes`` bytes.

    This is the quantity the paper's Traffic Amplification Factor is built
    on: a 32 B value still needs one whole 4 KiB page on the wire (§2.4).
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if nbytes == 0:
        return 0
    return -(-nbytes // page_size)


def split_sizes(total: int, chunk: int) -> list[int]:
    """Split ``total`` bytes into ``chunk``-sized pieces, last one short.

    ``split_sizes(130, 56) == [56, 56, 18]`` — exactly how a piggybacked
    value fans out over trailing transfer commands (§3.2).
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    out = [chunk] * (total // chunk)
    rem = total % chunk
    if rem:
        out.append(rem)
    return out


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count (``"1.5 GB"``), for bench report rows."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
