"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``info``        list presets, workloads and the resolved default config
``identify``    IDENTIFY a simulated device over the admin path
``dbbench``     run a db_bench-style benchmark against one configuration
``workload``    run one paper workload and print the full metric summary
``compare``     A/B/N configurations on byte-identical inputs
``trace``       run a workload with per-command tracing and export events
``calibrate``   run the §3.2 threshold calibration and print the curves
``bench``       regenerate paper tables/figures (same as python -m repro.bench)
``crashcheck``  cut power at sampled points and verify crash-consistency
``array``       run a sharded multi-device fault scenario (device loss,
                live rebuild) and verify the array durability oracle
``sweep``       fan a seeds x geometries x queue-depths x workloads grid
                across worker processes and merge one deterministic JSON
``serve``       expose a simulated store over TCP (text protocol, see
                docs/serving.md) with admission control and backpressure
``loadtest``    drive a server with an open-loop Poisson/ON-OFF load and
                report p50/p99/p999 latency; ``--rps-sweep`` produces the
                offered-rate curve with the saturation knee detected;
                ``--retry`` arms SERVER_BUSY retry with capped backoff
``chaos``       run a named fault-injection scenario against the service
                (stalled clients, resets, garbage frames, shard loss,
                power cuts) and verify the chaos oracles (docs/chaos.md)

``workload`` and ``dbbench`` accept ``--trace FILE`` (JSONL event dump) and
``workload`` also ``--trace-chrome FILE`` (chrome://tracing format);
``compare`` accepts ``--trace DIR`` for one JSONL dump per configuration.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import fields

from repro.core.config import PRESETS, BandSlimConfig
from repro.core.thresholds import ThresholdCalibrator
from repro.sim.runner import run_workload
from repro.units import fmt_bytes
from repro.workloads.dbbench import available_benchmarks, run_dbbench
from repro.workloads.workloads import PAPER_WORKLOADS


def _cmd_info(args: argparse.Namespace) -> int:
    print("presets (paper §4.1 configurations):")
    for name, cfg in PRESETS.items():
        print(f"  {name:<11} transfer={cfg.transfer_mode.value:<10} "
              f"packing={cfg.packing.value}")
    print("\nworkloads:", ", ".join(PAPER_WORKLOADS), "+ fillseq (A)")
    print("\ndefault config:")
    default = BandSlimConfig()
    for f in fields(default):
        print(f"  {f.name} = {getattr(default, f.name)}")
    return 0


def _cmd_identify(args: argparse.Namespace) -> int:
    from repro.device.kvssd import KVSSD
    from repro.core.config import preset as config_preset

    device = KVSSD.build(config=config_preset(args.config))
    fields, caps = device.driver.identify()
    print("IDENTIFY controller:")
    for key, value in fields.items():
        print(f"  {key:<10} {value}")
    print("BandSlim capability block (vendor-specific area):")
    print(f"  write piggyback capacity    {caps.write_piggyback_capacity} B")
    print(f"  transfer piggyback capacity {caps.transfer_piggyback_capacity} B")
    print(f"  NAND page size              {caps.nand_page_size} B")
    print(f"  buffer entries              {caps.buffer_entries}")
    print(f"  DLT capacity                {caps.dlt_capacity}")
    print(f"  transfer mode               {caps.transfer_mode}")
    print(f"  packing policy              {caps.packing_policy}")
    print(f"  threshold1 / threshold2     {caps.threshold1} B / {caps.threshold2} B")
    return 0


def _make_tracer():
    from repro.sim.trace import Tracer

    return Tracer()


def _cmd_dbbench(args: argparse.Namespace) -> int:
    tracer = _make_tracer() if args.trace else None
    report = run_dbbench(
        args.benchmark,
        num_ops=args.num,
        value_size=args.value_size,
        seed=args.seed,
        config=args.config,
        tracer=tracer,
    )
    print(report.format())
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"trace: {len(tracer.events)} events, {len(tracer.ops)} ops "
              f"-> {args.trace}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    try:
        factory = PAPER_WORKLOADS[args.name]
    except KeyError:
        print(f"unknown workload {args.name!r}; choose from "
              f"{list(PAPER_WORKLOADS)}", file=sys.stderr)
        return 2
    tracer = _make_tracer() if args.trace or args.trace_chrome else None
    result = run_workload(
        args.config,
        factory(args.num, seed=args.seed),
        nand_io_enabled=not args.no_nand and True,
        tracer=tracer,
    )
    print(f"workload        {result.workload}")
    print(f"config          {result.config_name}")
    print(f"ops             {result.ops}")
    print(f"value bytes     {fmt_bytes(result.value_bytes)}")
    print(f"avg response    {result.avg_response_us:.2f} us")
    print(f"throughput      {result.throughput_kops:.1f} Kops/s")
    print(f"PCIe traffic    {fmt_bytes(result.pcie_total_bytes)} "
          f"(TAF {result.traffic_amplification:.1f})")
    print(f"MMIO traffic    {fmt_bytes(result.mmio_bytes)}")
    print(f"NAND writes     {result.nand_page_writes_with_flush} "
          f"(WAF {result.write_amplification:.1f})")
    print(f"avg memcpy      {result.avg_memcpy_us:.2f} us/op")
    if tracer is not None:
        if args.trace:
            tracer.write_jsonl(args.trace)
            print(f"trace           {len(tracer.events)} events -> {args.trace}")
        if args.trace_chrome:
            tracer.write_chrome(args.trace_chrome)
            print(f"chrome trace    {args.trace_chrome}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    import os

    from repro.sim.compare import compare_configs

    try:
        factory = PAPER_WORKLOADS[args.workload]
    except KeyError:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{list(PAPER_WORKLOADS)}", file=sys.stderr)
        return 2
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    for name in configs:
        if name not in PRESETS:
            print(f"unknown preset {name!r}; choose from {sorted(PRESETS)}",
                  file=sys.stderr)
            return 2
    tracers = {}

    def make_tracer(index):
        tracers[index] = _make_tracer()
        return tracers[index]

    comparison = compare_configs(
        configs,
        factory(args.num, seed=args.seed),
        make_tracer=make_tracer if args.trace else None,
    )
    print(comparison.format())
    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
        for index, tracer in tracers.items():
            path = os.path.join(args.trace, f"{configs[index]}.jsonl")
            tracer.write_jsonl(path)
            print(f"trace[{configs[index]}] -> {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.trace import format_phase_table

    try:
        factory = PAPER_WORKLOADS[args.name]
    except KeyError:
        print(f"unknown workload {args.name!r}; choose from "
              f"{list(PAPER_WORKLOADS)}", file=sys.stderr)
        return 2
    tracer = _make_tracer()
    result = run_workload(
        args.config, factory(args.num, seed=args.seed), tracer=tracer
    )
    print(f"workload {result.workload} / config {result.config_name}: "
          f"{result.ops} ops, {len(tracer.events)} events, "
          f"{len(tracer.ops)} traced ops")
    print()
    print(format_phase_table(tracer.ops))
    if args.out:
        tracer.write_jsonl(args.out)
        print(f"\nevents (JSONL) -> {args.out}")
    if args.chrome:
        tracer.write_chrome(args.chrome)
        print(f"chrome trace   -> {args.chrome}")
    if args.report:
        for key, value in sorted(tracer.report().items()):
            print(f"{key:<40} {value:.3f}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    calibrator = ThresholdCalibrator(ops_per_point=args.ops)
    result = calibrator.calibrate()
    print(f"threshold1 = {result.threshold1} B (piggyback <-> PRP)")
    print(f"threshold2 = {result.threshold2} B (hybrid <-> PRP tail)")
    prp = dict(result.curves["prp"])
    print(f"\n{'size_B':>8} {'piggyback_us':>13} {'prp_us':>8}")
    for size, piggy in result.curves["piggyback"]:
        print(f"{size:>8} {piggy:>13.1f} {prp[size]:>8.1f}")
    return 0


def _write_json_report(path: str, obj: dict) -> None:
    """Dump a JSON report to ``path`` ('-' = stdout)."""
    import json

    text = json.dumps(obj, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _cmd_crashcheck(args: argparse.Namespace) -> int:
    from repro.core.config import preset as config_preset
    from repro.recovery.crashcheck import run_crashcheck

    config = config_preset(args.config) if args.config else None

    def progress(done, total, report, violation_count):
        if not args.quiet:
            print(f"  cut {done:>3}/{total}: scanned {report.pages_scanned} "
                  f"pages, torn {report.torn_pages}, replayed "
                  f"{report.entries_replayed}, violations so far "
                  f"{violation_count}")

    report = run_crashcheck(
        ops=args.ops,
        crash_points=args.crash_points,
        seed=args.seed,
        config=config,
        progress=progress,
    )
    print(f"crashcheck: {report.ops} ops, {report.crash_points} crash points, "
          f"seed {report.seed}")
    print(f"  dry run          {report.dry_run_us:.0f} us simulated")
    print(f"  cuts fired       {report.cuts_fired}/{report.crash_points}")
    print(f"  torn pages       {report.torn_pages} (all detected + retired)")
    print(f"  entries replayed {report.entries_replayed}")
    if args.json:
        _write_json_report(args.json, report.to_json_obj())
    if report.ok:
        print("  invariants       OK (flushed=>durable, "
              "acked=>absent-or-durable, no corruption)")
        return 0
    print(f"  VIOLATIONS       {len(report.violations)}", file=sys.stderr)
    for violation in report.violations:
        print(f"    {violation}", file=sys.stderr)
    return 1


def _cmd_array(args: argparse.Namespace) -> int:
    from repro.array.scenario import run_device_loss, run_rolling_remounts

    if args.scenario == "rolling":
        report = run_rolling_remounts(
            ops_per_phase=max(1, args.ops // (2 * args.shards + 1)),
            shards=args.shards,
            replication=args.replication,
            write_quorum=args.quorum,
            seed=args.seed,
            rebuild_throttle=args.rebuild_throttle,
        )
    else:
        report = run_device_loss(
            ops=args.ops,
            shards=args.shards,
            replication=args.replication,
            write_quorum=args.quorum,
            seed=args.seed,
            kill_mode=args.kill_mode,
            remount=args.remount,
            rebuild_throttle=args.rebuild_throttle,
        )
    if not args.quiet:
        print(f"array {report.name}: {report.ops} ops over {report.shards} "
              f"devices, R={report.replication} Q={report.write_quorum}, "
              f"seed {report.seed}")
        print(f"  acked            {report.acked_puts} puts, "
              f"{report.acked_deletes} deletes "
              f"({report.quorum_failures} quorum failures)")
        print(f"  reads            {report.reads} "
              f"({report.failovers} failovers, "
              f"{report.read_repairs} read-repairs)")
        print(f"  rebuild          {report.rebuild_copied} copied, "
              f"{report.rebuild_skipped} skipped (live write won), "
              f"{report.rebuild_unrecoverable} unrecoverable")
        print(f"  foreground p99   put {report.put_p99_us:.0f} us / "
              f"get {report.get_p99_us:.0f} us")
        print(f"  keys checked     {report.keys_checked}")
    if args.json:
        _write_json_report(args.json, report.to_json_obj())
    if report.ok:
        if not args.quiet:
            print("  oracle           OK (no acked write lost, reads served "
                  "throughout, acked=>durable on >=quorum replicas)")
        return 0
    print(f"  VIOLATIONS       {len(report.violations)}", file=sys.stderr)
    for violation in report.violations:
        print(f"    {violation}", file=sys.stderr)
    return 1


def _parse_geometries(text: str) -> list[tuple[int, int]]:
    """``"1x1,2x4"`` -> ``[(1, 1), (2, 4)]``."""
    geometries = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        channels, _, ways = item.partition("x")
        geometries.append((int(channels), int(ways)))
    return geometries


def _parse_ints(text: str) -> list[int]:
    return [int(item) for item in text.split(",") if item.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.sweeprun import build_grid, run_sweep, strip_wall_fields

    try:
        grid = build_grid(
            seeds=_parse_ints(args.seeds),
            geometries=_parse_geometries(args.geometries),
            queue_depths=_parse_ints(args.qds),
            workloads=[w.strip() for w in args.workloads.split(",") if w.strip()],
            ops=args.ops,
            config=args.config,
            batch_window=args.batch_window if args.batch_window > 1 else None,
        )
    except ValueError as exc:
        print(f"bad grid specification: {exc}", file=sys.stderr)
        return 2
    if not grid:
        print("empty sweep grid", file=sys.stderr)
        return 2

    report = run_sweep(grid, workers=args.workers)
    print(f"sweep: {report['point_count']} points, {args.workers} worker(s), "
          f"{report['wall_seconds']:.2f}s wall")
    for row in report["points"]:
        print(f"  {row['workload']:<7} {row['config']:<10} "
              f"{row['channels']}x{row['ways']} qd={row['queue_depth']:>2} "
              f"seed={row['seed']}: {row['throughput_kops']:>9.1f} Kops/s "
              f"(sim), TAF {row['traffic_amplification']:.2f}")
    if args.json:
        _write_json_report(args.json, report)
        if args.json != "-":
            print(f"report -> {args.json}")

    if args.selfcheck:
        serial = run_sweep(grid, workers=1)
        if strip_wall_fields(serial) != strip_wall_fields(report):
            print("SELF-CHECK FAILED: parallel merge differs from serial run",
                  file=sys.stderr)
            return 1
        print(f"self-check OK: {args.workers}-worker merge is identical to "
              f"the serial run (modulo wall times)")
    return 0


def _server_settings_from_args(args: argparse.Namespace):
    from repro.serve.server import ServerSettings

    settings = ServerSettings()
    if getattr(args, "host", None) is not None:
        settings.host = args.host
    if getattr(args, "port", None) is not None:
        settings.port = args.port
    if args.max_inflight is not None:
        settings.max_inflight = args.max_inflight
    if args.max_queue_delay_us is not None:
        settings.max_queue_delay_us = args.max_queue_delay_us
    if getattr(args, "idle_timeout_s", None) is not None:
        settings.idle_timeout_s = args.idle_timeout_s
    if getattr(args, "breaker_threshold", None) is not None:
        settings.breaker_error_threshold = args.breaker_threshold
    if getattr(args, "breaker_probe_every", None) is not None:
        settings.breaker_probe_every = args.breaker_probe_every
    if getattr(args, "dispatch_batch", None) is not None:
        settings.dispatch_batch = args.dispatch_batch
    if getattr(args, "server_qd", None) is not None:
        settings.server_qd = args.server_qd
    return settings


def _retry_policy_from_args(args: argparse.Namespace):
    """None unless ``--retry`` was passed (retry default-off keeps the
    no-retry byte streams and goldens identical)."""
    if not getattr(args, "retry", False):
        return None
    from repro.loadgen.retry import RetryPolicy

    policy = RetryPolicy()
    overrides = {}
    if args.max_attempts is not None:
        overrides["max_attempts"] = args.max_attempts
    if args.retry_base_us is not None:
        overrides["base_backoff_us"] = args.retry_base_us
    if args.retry_deadline_us is not None:
        overrides["deadline_us"] = args.retry_deadline_us
    if overrides:
        from dataclasses import replace

        policy = replace(policy, **overrides)
    return policy


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.backend import StoreBackend
    from repro.serve.server import KVServer

    async def _serve() -> int:
        import signal

        backend = StoreBackend.build(args.config, array_shards=args.shards)
        server = KVServer(backend, _server_settings_from_args(args))
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop_requested.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loop: Ctrl-C still works
        # Handler installed before the banner: anyone scripting "wait for
        # the banner, then SIGTERM" gets the graceful drain, not the
        # default kill.
        print(f"serving {args.config} "
              f"({'array x%d' % args.shards if args.shards > 1 else 'single device'}) "
              f"on {host}:{port}", flush=True)
        print("protocol: GET/SET/DEL/SCAN/STATS (docs/serving.md); "
              "Ctrl-C or SIGTERM stops", flush=True)
        serve_task = loop.create_task(server.serve_forever())
        stop_task = loop.create_task(stop_requested.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            # Graceful drain: admitted device work completes, late
            # requests get ERR SHUTDOWN, then the loop tears down.
            await server.stop()
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task,
                                 return_exceptions=True)
        print("drained; bye", flush=True)
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nbye")
        return 0


def _loadtest_row(row: dict) -> str:
    return (f"  {row['offered_rps']:>9.0f} {row['achieved_rps']:>10.1f} "
            f"{row['p50_us']:>10.1f} {row['p99_us']:>10.1f} "
            f"{row['p999_us']:>10.1f} {row['busy_rejected']:>6} "
            f"{row['retries']:>7} {row['gave_up']:>6} {row['errors']:>5}")


_LOADTEST_HEADER = (f"  {'offered':>9} {'achieved':>10} {'p50_us':>10} "
                    f"{'p99_us':>10} {'p999_us':>10} {'busy':>6} "
                    f"{'retries':>7} {'gaveup':>6} {'err':>5}")


def _print_profile(profile: dict) -> None:
    print(f"profile: {profile['total_time_s']:.3f}s total, "
          f"hottest functions:")
    for row in profile["top"][:5]:
        print(f"  {row['cumtime_s']:>8.3f}s cum {row['tottime_s']:>8.3f}s "
              f"self {row['ncalls']:>8}x  {row['function']}")


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.loadgen import run_loadtest, run_rps_sweep

    kwargs = dict(
        requests=args.requests,
        conns=args.conns,
        process=args.process,
        seed=args.seed,
        num_keys=args.num_keys,
        value_size=args.value_size,
        read_fraction=args.read_fraction,
        window=args.window,
        array_shards=args.shards,
        settings=_server_settings_from_args(args),
        retry=_retry_policy_from_args(args),
        include_server_stats=args.server_stats,
    )
    profile = {} if args.profile else None
    if args.rps_sweep:
        points = [float(p) for p in args.rps_sweep.split(",") if p.strip()]
        if profile is None:
            report = run_rps_sweep(points, args.config, **kwargs)
        else:
            # Profile the whole sweep in one go (per-point profiles would
            # just overwrite each other in the report).
            import cProfile

            from repro.loadgen.runner import _profile_top

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                report = run_rps_sweep(points, args.config, **kwargs)
            finally:
                profiler.disable()
            profile.update(_profile_top(profiler))
            report["profile"] = profile
        print(f"open-loop sweep: {args.config}, {args.process} arrivals, "
              f"{args.requests} requests/point, {args.conns} conn(s), "
              f"seed {args.seed}")
        print(_LOADTEST_HEADER)
        for row in report["rows"]:
            print(_loadtest_row(row))
        knee = report["knee_rps"]
        print(f"saturation knee: "
              f"{'none detected' if knee is None else '%.0f rps' % knee}")
        if profile:
            _print_profile(profile)
        if args.json:
            _write_json_report(args.json, report)
            if args.json != "-":
                print(f"report -> {args.json}")
        return 0
    result = run_loadtest(args.config, rps=args.rps, profile=profile, **kwargs)
    row = result.to_dict()
    print(f"open-loop run: {args.config}, {args.process} arrivals, "
          f"seed {args.seed}")
    print(_LOADTEST_HEADER)
    print(_loadtest_row(row))
    if profile:
        _print_profile(profile)
    if row["protocol_errors"]:
        print(f"PROTOCOL ERRORS: {row['protocol_errors']}", file=sys.stderr)
        return 1
    if args.json:
        from repro.loadgen import REPORT_SCHEMA

        obj = {"schema": REPORT_SCHEMA, "rows": [row],
               "preset": args.config, "knee_rps": None}
        if profile:
            obj["profile"] = profile
        _write_json_report(args.json, obj)
        if args.json != "-":
            print(f"report -> {args.json}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CHAOS_SCENARIOS, CHAOS_SCHEMA, run_scenario

    if args.list:
        for name in sorted(CHAOS_SCENARIOS):
            print(f"{name}:")
            print(f"  {CHAOS_SCENARIOS[name].description}")
        return 0
    if args.scenario == "all":
        names = sorted(CHAOS_SCENARIOS)
    elif args.scenario in CHAOS_SCENARIOS:
        names = [args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; choose from "
              f"{sorted(CHAOS_SCENARIOS)} or 'all'", file=sys.stderr)
        return 2
    exit_code = 0
    reports = []
    for name in names:
        report = run_scenario(name, seed=args.seed, requests=args.requests)
        reports.append(report)
        verdict = "OK" if report.ok else "FAIL"
        print(f"chaos {name}: seed {report.seed}, {report.requests} requests "
              f"-> {verdict}")
        p99s = " / ".join(
            f"{row['name']} {row['p99_us']:.0f}" for row in report.phases
        )
        print(f"  p99 (us)       {p99s}")
        print(f"  errors         {report.error_fraction:.2%} of requests, "
              f"{report.retries} retries")
        print(f"  write oracle   {report.write_oracle}: {report.acked_writes} "
              f"acked writes, {report.keys_checked} keys checked, "
              f"{report.keys_uncertain} uncertain")
        for event in report.chaos_events:
            print(f"  event          op {event['at_op']}: {event['kind']} "
                  f"(shard {event['shard']}) at {event['now_us']:.0f} us")
        for violation in report.violations:
            print(f"  VIOLATION      {violation}", file=sys.stderr)
        if not report.ok:
            exit_code = 1
    if args.json:
        if len(reports) == 1:
            obj = reports[0].to_json_obj()
        else:
            obj = {"schema": CHAOS_SCHEMA,
                   "reports": [r.to_json_obj() for r in reports]}
        _write_json_report(args.json, obj)
        if args.json != "-":
            print(f"report -> {args.json}")
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    forwarded = list(args.figures)
    if args.ops is not None:
        forwarded += ["--ops", str(args.ops)]
    if args.out is not None:
        forwarded += ["--out", args.out]
    return bench_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BandSlim KV-SSD simulator (ICPP 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list presets, workloads and defaults")

    p = sub.add_parser("identify", help="IDENTIFY a simulated device (admin path)")
    p.add_argument("--config", default="backfill", choices=sorted(PRESETS))

    p = sub.add_parser("dbbench", help="run a db_bench-style benchmark")
    p.add_argument("--benchmark", default="fillseq",
                   choices=available_benchmarks())
    p.add_argument("--num", type=int, default=10_000)
    p.add_argument("--value-size", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--config", default="adaptive", choices=sorted(PRESETS))
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="dump the per-command event trace as JSONL")

    p = sub.add_parser("workload", help="run one paper workload")
    p.add_argument("--name", default="W(M)")
    p.add_argument("--num", type=int, default=5_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--config", default="backfill", choices=sorted(PRESETS))
    p.add_argument("--no-nand", action="store_true",
                   help="disable NAND I/O (transfer isolation, §4.2)")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="dump the per-command event trace as JSONL")
    p.add_argument("--trace-chrome", metavar="FILE", default=None,
                   help="dump the trace in chrome://tracing format")

    p = sub.add_parser("compare", help="A/B configurations on one workload")
    p.add_argument("--workload", default="W(M)")
    p.add_argument("--configs", default="baseline,backfill",
                   help="comma-separated preset names (first = baseline)")
    p.add_argument("--num", type=int, default=3_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", metavar="DIR", default=None,
                   help="write one JSONL event trace per configuration")

    p = sub.add_parser("trace", help="trace a workload per-command (Fig 12)")
    p.add_argument("--name", default="W(M)")
    p.add_argument("--num", type=int, default=1_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--config", default="backfill", choices=sorted(PRESETS))
    p.add_argument("--out", metavar="FILE", default=None,
                   help="dump the event stream as JSONL")
    p.add_argument("--chrome", metavar="FILE", default=None,
                   help="dump the trace in chrome://tracing format")
    p.add_argument("--report", action="store_true",
                   help="print the flat trace metric report")

    p = sub.add_parser("calibrate", help="derive adaptive thresholds (§3.2)")
    p.add_argument("--ops", type=int, default=100)

    p = sub.add_parser("crashcheck",
                       help="verify crash-consistency under power loss")
    p.add_argument("--ops", type=int, default=2_000)
    p.add_argument("--crash-points", type=int, default=25)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--config", default=None, choices=sorted(PRESETS),
                   help="base preset (crash-consistency mode is forced on)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-cut progress lines")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the report as JSON ('-' = stdout)")

    p = sub.add_parser("array",
                       help="multi-device array fault scenario + oracle")
    p.add_argument("--scenario", default="device-loss",
                   choices=["device-loss", "rolling"],
                   help="device-loss: kill one device mid-burst and rebuild "
                        "live; rolling: remount every device in turn")
    p.add_argument("--ops", type=int, default=600)
    p.add_argument("--shards", type=int, default=3)
    p.add_argument("--replication", type=int, default=2)
    p.add_argument("--quorum", type=int, default=1)
    p.add_argument("--seed", type=int, default=0xA11A)
    p.add_argument("--kill-mode", default="power",
                   choices=["power", "failstop"],
                   help="power: scripted power cut; failstop: router-level")
    p.add_argument("--remount", action="store_true",
                   help="rebuild onto the dead device's own recovered media "
                        "instead of a factory-fresh replacement")
    p.add_argument("--rebuild-throttle", type=float, default=4.0,
                   help="rebuild copies allowed per foreground op")
    p.add_argument("--quiet", action="store_true")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the report as JSON ('-' = stdout)")

    p = sub.add_parser("sweep",
                       help="multiprocess experiment sweep with merged JSON")
    p.add_argument("--workers", type=int, default=max(1, os.cpu_count() or 1),
                   help="worker processes (1 = serial in-process)")
    p.add_argument("--ops", type=int, default=400)
    p.add_argument("--seeds", default="0,1", help="comma-separated seeds")
    p.add_argument("--geometries", default="1x1,2x4",
                   help="comma-separated channelsxways, e.g. 1x1,2x4")
    p.add_argument("--qds", default="1,32",
                   help="comma-separated queue depths")
    p.add_argument("--workloads", default="mixed",
                   help="comma-separated: mixed, B, C, D, M")
    p.add_argument("--config", default="backfill", choices=sorted(PRESETS))
    p.add_argument("--batch-window", type=int, default=256,
                   help="batched-replay window (<=1 = serial replay)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the merged report as JSON ('-' = stdout)")
    p.add_argument("--selfcheck", action="store_true",
                   help="re-run serially and verify the merged JSON is "
                        "identical modulo wall times")

    p = sub.add_parser("serve",
                       help="serve a simulated store over TCP (docs/serving.md)")
    p.add_argument("--config", default="backfill", choices=sorted(PRESETS))
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = pick an ephemeral port)")
    p.add_argument("--shards", type=int, default=1,
                   help=">1 serves a sharded ArrayStore (SCAN unsupported)")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="device queue slots before SERVER_BUSY")
    p.add_argument("--max-queue-delay-us", type=float, default=None,
                   help="projected-wait admission bound (<=0 disables)")
    p.add_argument("--idle-timeout-s", type=float, default=None,
                   help="reap connections idle this long (0 = never)")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   help="consecutive backend errors that open the circuit "
                        "breaker (0 = disabled)")
    p.add_argument("--breaker-probe-every", type=int, default=None,
                   help="while open, admit every Nth device op as a probe")
    p.add_argument("--dispatch-batch", type=int, default=None,
                   help="device ops buffered per connection before a forced "
                        "flush (>1 = batched dispatch; clients should ring "
                        "the DISPATCH doorbell)")
    p.add_argument("--server-qd", type=int, default=None,
                   help="virtual QD slots per shard in the queueing model, "
                        "and the pipelined batch depth handed to the device")

    p = sub.add_parser("loadtest",
                       help="open-loop load against an in-process server")
    p.add_argument("--config", default="backfill", choices=sorted(PRESETS))
    p.add_argument("--rps", type=float, default=5_000.0,
                   help="offered request rate (virtual time)")
    p.add_argument("--rps-sweep", default=None, metavar="R1,R2,...",
                   help="sweep offered rates and detect the saturation knee")
    p.add_argument("--requests", type=int, default=2_000)
    p.add_argument("--conns", type=int, default=1,
                   help="client connections (1 = fully deterministic)")
    p.add_argument("--process", default="poisson",
                   choices=["poisson", "onoff"],
                   help="arrival process (onoff = bursty, same mean rate)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--num-keys", type=int, default=500)
    p.add_argument("--value-size", type=int, default=256)
    p.add_argument("--read-fraction", type=float, default=0.5)
    p.add_argument("--window", type=int, default=64,
                   help="per-connection pipelined-send window")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--max-inflight", type=int, default=None)
    p.add_argument("--max-queue-delay-us", type=float, default=None)
    p.add_argument("--dispatch-batch", type=int, default=None,
                   help="server-side batch size (>1 = batched dispatch; the "
                        "client rings the doorbell every "
                        "min(dispatch_batch, window) ops)")
    p.add_argument("--server-qd", type=int, default=None,
                   help="virtual QD slots per shard in the server's "
                        "queueing model")
    p.add_argument("--server-stats", action="store_true",
                   help="include the server-side serve.* counters in the "
                        "report rows (default off keeps reports byte-stable)")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the run and record the hottest functions "
                        "in the report (wall-clock, so not deterministic)")
    p.add_argument("--retry", action="store_true",
                   help="retry SERVER_BUSY with capped exponential backoff "
                        "(charged in virtual time; default off)")
    p.add_argument("--max-attempts", type=int, default=None,
                   help="total attempts per op before GAVE_UP (with --retry)")
    p.add_argument("--retry-base-us", type=float, default=None,
                   help="first backoff in virtual us (with --retry)")
    p.add_argument("--retry-deadline-us", type=float, default=None,
                   help="per-op deadline in virtual us; a retry that would "
                        "slip past it is DEADLINE_EXCEEDED (with --retry)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the report as JSON ('-' = stdout)")

    p = sub.add_parser("chaos",
                       help="fault-injection scenarios + oracles (docs/chaos.md)")
    p.add_argument("--scenario", default="shard-loss-under-load",
                   help="scenario name, or 'all' (see --list)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=None,
                   help="override the scenario's request count")
    p.add_argument("--list", action="store_true",
                   help="list the scenario catalog and exit")
    p.add_argument("--json", metavar="FILE", nargs="?", const="-", default=None,
                   help="write the report as JSON (no argument = stdout)")

    p = sub.add_parser("bench", help="regenerate paper tables/figures")
    p.add_argument("figures", nargs="*", default=["all"])
    p.add_argument("--ops", type=int, default=None)
    p.add_argument("--out", type=str, default=None)

    return parser


_HANDLERS = {
    "info": _cmd_info,
    "identify": _cmd_identify,
    "dbbench": _cmd_dbbench,
    "workload": _cmd_workload,
    "compare": _cmd_compare,
    "trace": _cmd_trace,
    "calibrate": _cmd_calibrate,
    "crashcheck": _cmd_crashcheck,
    "array": _cmd_array,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
