"""BandSlim configuration and the paper's named evaluation presets (§4.1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import GIB, KIB, MIB


class TransferMode(enum.Enum):
    """How the driver ships value bytes to the device (§3.2)."""

    #: PRP page-unit DMA for everything — the state-of-the-art KV-SSD [22].
    BASELINE = "baseline"
    #: NVMe-command piggybacking for everything (write + transfer commands).
    PIGGYBACK = "piggyback"
    #: Page-aligned head via PRP, sub-page tail piggybacked.
    HYBRID = "hybrid"
    #: Threshold-based selection among the three (α·threshold₁, β·threshold₂).
    ADAPTIVE = "adaptive"


class PackingPolicyKind(enum.Enum):
    """How the controller packs values into NAND page buffer entries (§3.3)."""

    #: 4 KiB-slot packing, as block-interface SSDs do — the baseline.
    BLOCK = "block"
    #: KAML-style: memcpy everything to the write pointer (§3.3.1).
    ALL = "all"
    #: Pack piggybacked values only; DMA values stay page-aligned (§3.3.2).
    SELECTIVE = "selective"
    #: Selective + DMA Log Table backfilling of the gaps (§3.3.3).
    BACKFILL = "backfill"
    #: Extension (§4.3 closing remark): integrate All and Backfill — memcpy
    #: small DMA values to the WP, leave large ones aligned + backfill.
    INTEGRATED = "integrated"


@dataclass(frozen=True)
class BandSlimConfig:
    """Everything tunable about one simulated BandSlim KV-SSD."""

    transfer_mode: TransferMode = TransferMode.ADAPTIVE
    packing: PackingPolicyKind = PackingPolicyKind.BACKFILL

    # --- adaptive transfer thresholds (§3.2) -------------------------------
    #: Value size (bytes) at or below which piggybacking beats PRP.
    #: Default 91 = 35 (write cmd) + 56 (one transfer cmd): two synchronous
    #: round trips cost about one round trip + one 4 KiB DMA in the default
    #: latency model — the paper's "parity at 64 B, worse from 128 B" shape.
    threshold1: int = 91
    #: Sub-page tail size at or below which hybrid beats pure PRP. 0 means
    #: hybrid never wins on response time (true for the default latency
    #: model, matching the paper's Fig 9b conclusion).
    threshold2: int = 0
    #: User preference multipliers: >1 trades response time for traffic.
    alpha: float = 1.0
    beta: float = 1.0

    # --- device shape ---------------------------------------------------------
    #: NAND page buffer entries (paper caps the DLT to match, e.g. 512).
    buffer_entries: int = 512
    #: DMA Log Table capacity (entries).
    dlt_capacity: int = 512
    #: INTEGRATED packing: DMA values at or below this size are memcpy'd to
    #: the WP (All-style); larger ones stay page-aligned and are backfilled.
    #: Default 3 KiB: below it, the memcpy costs less than the NAND space a
    #: page-aligned gap would burn (see DESIGN.md §5).
    integrated_copy_threshold: int = 3 * KIB
    #: Device DRAM scratch area for staged DMA + GET assembly.
    scratch_bytes: int = 1 * MIB
    #: Largest value a single PUT may carry.
    max_value_bytes: int = 512 * KIB
    #: Simulated NAND module capacity (sparsely stored; Table 1 uses 1 TB).
    nand_capacity_bytes: int = 8 * GIB
    #: Device read cache over NAND pages, in pages (0 disables, matching
    #: the paper's memoryless read path; enable for read-heavy studies).
    read_cache_pages: int = 0
    #: Device-DRAM lookup cost charged to a read-cache hit, in simulated
    #: µs (hits skip the NAND sense/transfer entirely; see
    #: docs/latency-model.md).
    read_cache_hit_us: float = 2.0
    #: NAND channels / ways per channel (Table 1: 4 x 8). 1 x 1 serializes
    #: every NAND op — the degenerate geometry the seed model charged.
    nand_channels: int = 4
    nand_ways: int = 8
    #: Driver in-flight command window for :meth:`put_many`. 1 keeps the
    #: paper testbed's synchronous passthrough (one command at a time).
    queue_depth: int = 1
    #: Fraction of logical pages reserved for the vLog (rest: SSTables).
    vlog_fraction: float = 0.75

    # --- LSM ------------------------------------------------------------------
    memtable_flush_bytes: int = 256 * KIB

    # --- fault recovery (see docs/fault-model.md) --------------------------------
    #: ECC strength: bit flips per page read the FTL corrects in place.
    ecc_correctable_bits: int = 8
    #: Read-retry attempts before a read is declared uncorrectable.
    read_retry_limit: int = 3
    #: Fresh pages tried before a program is declared unrecoverable.
    program_retry_limit: int = 4
    #: Driver-level whole-operation retries on retryable statuses
    #: (MEDIA_ERROR, DEVICE_BUSY) and command timeouts.
    op_retry_limit: int = 4
    #: Initial driver retry backoff in *simulated* µs; doubles per retry.
    retry_backoff_us: float = 50.0
    #: Per-command driver timeout in simulated µs; 0 disables timeout
    #: detection (the default — NAND flush stalls legitimately run long).
    command_timeout_us: float = 0.0
    #: Crash-consistency mode (see docs/crash-consistency.md): the device
    #: stamps per-page OOB metadata, honors NVMe FLUSH with a durable
    #: manifest checkpoint, and supports ``KVSSD.remount()`` recovery.
    #: Implied automatically when a fault plan enables power loss; off by
    #: default so the seed goldens stay byte-identical.
    crash_consistency: bool = False

    # --- multi-device array (see docs/array.md) ----------------------------------
    #: Independent KV-SSD stacks the host-side router shards keys across.
    #: 1 keeps the single-device stack (the array layer is never built, so
    #: every seed golden stays byte-identical).
    array_shards: int = 1
    #: Replicas per key (R-way). Each key lives on ``replication_factor``
    #: distinct devices chosen by consistent hashing.
    replication_factor: int = 1
    #: Replica acks required before a write is acknowledged to the caller.
    #: The array-level write latency is the quorum-th fastest replica ack.
    write_quorum: int = 1
    #: Rebuild pacing: keyspace-slice copies the rebuild engine may run per
    #: foreground operation while a device is being rebuilt under live
    #: traffic. Higher drains the rebuild faster but stalls foreground ops
    #: longer (the host thread interleaves copies between ops); 0 disables
    #: auto-pumping — only ``drain_rebuild()`` makes progress.
    rebuild_throttle: float = 4.0

    # --- experiment switches ----------------------------------------------------
    #: §4.2 disables NAND I/O to isolate transfer effects.
    nand_io_enabled: bool = True
    #: Extension: submit a value's trailing transfer commands as one batch
    #: (single doorbell, coalesced completion) instead of the paper
    #: testbed's one-at-a-time passthrough. The paper's §4.2 diagnosis —
    #: piggybacking degrades from 128 B because "transmission of NVMe
    #: commands ... is synchronous and serialized" — becomes testable.
    batched_submission: bool = False

    def __post_init__(self) -> None:
        if self.threshold1 < 0 or self.threshold2 < 0:
            raise ConfigError("thresholds must be non-negative")
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError("alpha and beta must be positive")
        if self.buffer_entries < 1:
            raise ConfigError("need at least one NAND page buffer entry")
        if self.dlt_capacity < 1:
            raise ConfigError("DLT capacity must be at least 1")
        if self.scratch_bytes < 64 * KIB:
            raise ConfigError("scratch area unreasonably small")
        if self.max_value_bytes > self.scratch_bytes:
            raise ConfigError("max_value_bytes cannot exceed scratch_bytes")
        if not 0.1 <= self.vlog_fraction <= 0.95:
            raise ConfigError("vlog_fraction must be in [0.1, 0.95]")
        if self.ecc_correctable_bits < 0:
            raise ConfigError("ecc_correctable_bits must be non-negative")
        if self.read_retry_limit < 1:
            raise ConfigError("read_retry_limit must be at least 1")
        if self.program_retry_limit < 0 or self.op_retry_limit < 0:
            raise ConfigError("retry limits must be non-negative")
        if self.retry_backoff_us < 0 or self.command_timeout_us < 0:
            raise ConfigError("retry backoff and command timeout must be >= 0")
        if self.nand_channels < 1 or self.nand_ways < 1:
            raise ConfigError("nand_channels and nand_ways must be >= 1")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.read_cache_pages < 0:
            raise ConfigError("read_cache_pages must be >= 0")
        if self.read_cache_hit_us < 0:
            raise ConfigError("read_cache_hit_us must be >= 0")
        if self.array_shards < 1:
            raise ConfigError("array_shards must be >= 1")
        if not 1 <= self.replication_factor <= self.array_shards:
            raise ConfigError(
                "replication_factor must be in [1, array_shards], got "
                f"{self.replication_factor} with {self.array_shards} shard(s)"
            )
        if not 1 <= self.write_quorum <= self.replication_factor:
            raise ConfigError(
                "write_quorum must be in [1, replication_factor], got "
                f"{self.write_quorum} with replication {self.replication_factor}"
            )
        if self.rebuild_throttle < 0:
            raise ConfigError("rebuild_throttle must be >= 0")

    # --- effective thresholds -----------------------------------------------

    @property
    def effective_threshold1(self) -> float:
        """α·threshold₁ — the piggyback↔PRP decision point."""
        return self.alpha * self.threshold1

    @property
    def effective_threshold2(self) -> float:
        """β·threshold₂ — the hybrid↔PRP decision point for sub-page tails."""
        return self.beta * self.threshold2

    def with_overrides(self, **overrides) -> "BandSlimConfig":
        """A copy of this config with the named fields replaced."""
        return replace(self, **overrides)


def _cfg(transfer: TransferMode, packing: PackingPolicyKind, **kw) -> BandSlimConfig:
    return BandSlimConfig(transfer_mode=transfer, packing=packing, **kw)


#: The paper's named evaluation configurations (§4.1, "Evaluation Setup").
PRESETS: dict[str, BandSlimConfig] = {
    # Transfer-method comparison (Figs 8–10). Packing stays Block so the
    # transfer effect is isolated, as in the paper.
    "baseline": _cfg(TransferMode.BASELINE, PackingPolicyKind.BLOCK),
    "piggyback": _cfg(TransferMode.PIGGYBACK, PackingPolicyKind.BLOCK),
    "hybrid": _cfg(TransferMode.HYBRID, PackingPolicyKind.BLOCK),
    "adaptive": _cfg(TransferMode.ADAPTIVE, PackingPolicyKind.BLOCK),
    # Packing comparison under fixed transfer (Fig 11).
    "packing": _cfg(TransferMode.BASELINE, PackingPolicyKind.ALL),
    "piggy+pack": _cfg(TransferMode.PIGGYBACK, PackingPolicyKind.ALL),
    # Packing-policy matrix under adaptive transfer (Fig 12).
    "block": _cfg(TransferMode.ADAPTIVE, PackingPolicyKind.BLOCK),
    "all": _cfg(TransferMode.ADAPTIVE, PackingPolicyKind.ALL),
    "select": _cfg(TransferMode.ADAPTIVE, PackingPolicyKind.SELECTIVE),
    "backfill": _cfg(TransferMode.ADAPTIVE, PackingPolicyKind.BACKFILL),
    # Extension beyond the paper's evaluation (its §4.3 closing remark).
    "integrated": _cfg(TransferMode.ADAPTIVE, PackingPolicyKind.INTEGRATED),
}


def preset(name: str, **overrides) -> BandSlimConfig:
    """Look up a paper preset by name, optionally overriding fields."""
    try:
        base = PRESETS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return base.with_overrides(**overrides) if overrides else base
