"""DMA Log Table (DLT): the bookkeeping behind backfilling (§3.3.3).

A bounded circular queue of DMA placements the write pointer has not yet
passed. Before packing a piggybacked value, the Backfill policy consults
the *oldest unconsumed* entry in O(1): if the value would collide with that
DMA region, the WP jumps to the region's end and the entry is consumed.

Space accounting follows the paper: an entry stores the logical NAND page
number plus the 4 KiB memory-page offset within it (26 + 2 bits for 1 TB of
16 KiB pages) and a 4-byte value size — so a 512-entry DLT costs ~4 KiB,
which :meth:`DMALogTable.table_bytes` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PackingError
from repro.units import MEM_PAGE_SIZE, is_aligned


@dataclass(frozen=True)
class DLTEntry:
    """One page-unit DMA placement: [start, start + size) in vLog byte space."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise PackingError(f"negative DLT start {self.start}")
        if self.size <= 0:
            raise PackingError(f"DLT size must be positive, got {self.size}")
        if not is_aligned(self.start, MEM_PAGE_SIZE):
            raise PackingError(
                f"DMA destinations are page-aligned; got start {self.start}"
            )

    @property
    def end(self) -> int:
        return self.start + self.size


class DMALogTable:
    """Bounded FIFO of unconsumed DMA regions."""

    def __init__(self, capacity: int, nand_page_size: int, vlog_pages: int) -> None:
        if capacity < 1:
            raise PackingError(f"DLT capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.nand_page_size = nand_page_size
        self.vlog_pages = vlog_pages
        self._ring: list[DLTEntry | None] = [None] * capacity
        self._head = 0
        self._count = 0
        #: Entries dropped because the table was full (forced consumption).
        self.overflow_evictions = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_full(self) -> bool:
        return self._count == self.capacity

    def oldest(self) -> DLTEntry:
        """The oldest unconsumed entry (O(1) — the §3.3.3 reference check)."""
        if self.is_empty:
            raise PackingError("DLT is empty")
        entry = self._ring[self._head]
        assert entry is not None
        return entry

    def push(self, entry: DLTEntry) -> DLTEntry | None:
        """Record a DMA placement; returns an evicted entry if full.

        When full, the *oldest* entry is evicted (its gap can no longer be
        backfilled; the caller advances the WP past it).
        """
        if entry.start >= entry.end:
            raise PackingError("degenerate DLT entry")
        if self._count and entry.start < self._newest().end:
            raise PackingError(
                f"DLT entries must be pushed in placement order: "
                f"{entry.start} < {self._newest().end}"
            )
        evicted: DLTEntry | None = None
        if self.is_full:
            evicted = self.consume_oldest()
            self.overflow_evictions += 1
        tail = (self._head + self._count) % self.capacity
        self._ring[tail] = entry
        self._count += 1
        return evicted

    def consume_oldest(self) -> DLTEntry:
        """Pop the head ("moving to the next oldest once consumed")."""
        entry = self.oldest()
        self._ring[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return entry

    def consume_below(self, offset: int) -> int:
        """Consume every entry whose region ends at or before ``offset``.

        Used after force-flushes: regions inside flushed pages are gone.
        Returns the number consumed.
        """
        consumed = 0
        while not self.is_empty and self.oldest().end <= offset:
            self.consume_oldest()
            consumed += 1
        return consumed

    def _newest(self) -> DLTEntry:
        tail = (self._head + self._count - 1) % self.capacity
        entry = self._ring[tail]
        assert entry is not None
        return entry

    # --- space accounting (§3.3.3) -----------------------------------------

    def entry_bits(self) -> int:
        """Bits per entry: LPN + memory-page slot + 32-bit value size."""
        lpn_bits = max(1, (self.vlog_pages - 1).bit_length())
        slots = self.nand_page_size // MEM_PAGE_SIZE
        slot_bits = max(1, (slots - 1).bit_length())
        return lpn_bits + slot_bits + 32

    def table_bytes(self) -> int:
        """Total DLT memory (paper: 512 entries ≈ 4 KiB upper bound)."""
        return (self.entry_bits() * self.capacity + 7) // 8
