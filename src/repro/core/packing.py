"""The NAND page buffer and the four packing policies (§3.3).

The buffer is the tail of the vLog: a circular pool of NAND-page-sized
entries in device DRAM, each bound to the next logical vLog page. A packing
policy decides *where inside that byte space* each incoming value lands:

* :class:`BlockPacking` — 4 KiB-slot placement, like a block SSD's write
  buffer (the baseline the paper measures against);
* :class:`AllPacking` — KAML-style: everything is memcpy'd to the write
  pointer, maximizing density at the cost of large copies (§3.3.1);
* :class:`SelectivePacking` — only piggybacked values are packed; DMA'd
  values stay at page-aligned addresses, leaving gaps (§3.3.2);
* :class:`BackfillPacking` — Selective plus a DMA Log Table that lets
  later piggybacked values backfill those gaps (§3.3.3).

Placements are expressed in an absolute **vLog byte space**: offset ``o``
lives in buffer entry ``o // page_size``, which flushes to logical page
``base_lpn + o // page_size``. Entries open in order (so vLog pages stay
consecutive) and flush when the policy's frontier passes them — or by force
when the pool wraps around full (the Fig 12 W(C) pathology for Backfill).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.config import BandSlimConfig, PackingPolicyKind
from repro.core.dlt import DLTEntry, DMALogTable
from repro.errors import PackingError
from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.vlog import VLog
from repro.memory.device import DRAMRegion
from repro.nand.ftl import PageMappedFTL
from repro.sim.stats import MetricSet
from repro.units import MEM_PAGE_SIZE, align_up, is_aligned


@dataclass(frozen=True, slots=True)
class FlushEvent:
    """One buffer entry leaving the pool for NAND (or the bit bucket)."""

    entry_index: int
    lpn: int
    start_offset: int
    end_offset: int
    forced: bool


@dataclass(frozen=True, slots=True)
class Placement:
    """Where one value's bytes will live, and how they get there."""

    #: Absolute vLog byte offset of the value's first byte.
    value_offset: int
    #: Page-aligned offset for a *direct* DMA into the buffer, or None when
    #: the DMA must stage through scratch and be memcpy'd to value_offset.
    dma_target: int | None

    @property
    def direct(self) -> bool:
        return self.dma_target is not None


#: Shared no-op result for open_through's common case. Callers only
#: iterate flush events; never mutate this.
_NO_EVENTS: list[FlushEvent] = []


class NandPageBuffer:
    """Circular pool of NAND-page-sized write buffer entries."""

    def __init__(
        self,
        region: DRAMRegion,
        vlog: VLog,
        ftl: PageMappedFTL,
        pool_entries: int,
        nand_io_enabled: bool = True,
    ) -> None:
        if pool_entries < 1:
            raise PackingError("buffer pool needs at least one entry")
        self.page_size = vlog.page_size
        if region.size < pool_entries * self.page_size:
            raise PackingError(
                f"region of {region.size} bytes cannot hold {pool_entries} "
                f"entries of {self.page_size}"
            )
        self.region = region
        # Hot-path shortcut: entry slots are provably inside the region
        # (slot < pool_entries * page_size <= region.size), so per-byte
        # access goes straight to DRAM with the region base folded in,
        # skipping the redundant region-level bounds check.
        self._dram_write = region.dram.write
        self._dram_read = region.dram.read
        self._region_base = region.base
        self.vlog = vlog
        self.ftl = ftl
        self.pool_entries = pool_entries
        self.nand_io_enabled = nand_io_enabled
        #: entry_index -> lpn, insertion-ordered (oldest first).
        self._open: OrderedDict[int, int] = OrderedDict()
        self._next_index = 0
        self.metrics = MetricSet("buffer")
        # Cached: hot-path counters (every placement funnels through
        # open_through / the flush paths).
        self._c_flushes = self.metrics.counter("flushes")
        self._c_forced_flushes = self.metrics.counter("forced_flushes")
        self._c_entries_opened = self.metrics.counter("entries_opened")
        vlog.attach_buffer(self)

    # --- entry lifecycle ---------------------------------------------------

    @property
    def open_entries(self) -> int:
        return len(self._open)

    def _slot_base(self, entry_index: int) -> int:
        return (entry_index % self.pool_entries) * self.page_size

    def _open_next(self) -> list[FlushEvent]:
        """Open the next sequential entry, force-flushing if the pool is full."""
        events: list[FlushEvent] = []
        if len(self._open) >= self.pool_entries:
            oldest_index = next(iter(self._open))
            events.append(self._flush_entry(oldest_index, forced=True))
        index = self._next_index
        lpn = self.vlog.alloc_page()
        expected = self.vlog.base_lpn + index
        if lpn != expected:
            raise PackingError(
                f"vLog allocation out of step: got LPN {lpn}, expected {expected}"
            )
        self._open[index] = lpn
        self.region.fill(self._slot_base(index), self.page_size, 0)
        self._next_index = index + 1
        self._c_entries_opened.add(1)
        return events

    def open_through(self, end_offset: int) -> list[FlushEvent]:
        """Ensure entries covering bytes [0, end_offset) exist; return any
        force-flush events the caller must react to (WP adjustment)."""
        if end_offset < 0:
            raise PackingError(f"negative offset {end_offset}")
        last_needed = (end_offset - 1) // self.page_size if end_offset else -1
        if self._next_index > last_needed:
            # Covering entries already exist — the per-placement common
            # case; skip the event-list allocation.
            return _NO_EVENTS
        events: list[FlushEvent] = []
        while self._next_index <= last_needed:
            events.extend(self._open_next())
        return events

    def _flush_entry(self, entry_index: int, forced: bool) -> FlushEvent:
        lpn = self._open.pop(entry_index)
        data = self.region.read(self._slot_base(entry_index), self.page_size)
        if self.nand_io_enabled:
            self.ftl.write(lpn, data)
        self._c_flushes.add(1)
        if forced:
            self._c_forced_flushes.add(1)
        return FlushEvent(
            entry_index=entry_index,
            lpn=lpn,
            start_offset=entry_index * self.page_size,
            end_offset=(entry_index + 1) * self.page_size,
            forced=forced,
        )

    def flush_below(self, frontier_offset: int) -> list[FlushEvent]:
        """Flush every open entry entirely below ``frontier_offset``."""
        events = None
        while self._open:
            oldest = next(iter(self._open))
            if (oldest + 1) * self.page_size <= frontier_offset:
                if events is None:
                    events = []
                events.append(self._flush_entry(oldest, forced=False))
            else:
                break
        # Runs once per PUT and usually flushes nothing; skip the alloc.
        return _NO_EVENTS if events is None else events

    def flush_all(self) -> list[FlushEvent]:
        """Flush everything (shutdown / end of run).

        Drains as one :meth:`~repro.nand.ftl.PageMappedFTL.write_many`
        batch: the entries are popped in open order and their pages handed
        to the FTL in that same order, so the result is identical to
        per-entry flushing — the FTL just skips per-page attribute churn.
        """
        events: list[FlushEvent] = []
        pending: list[tuple[int, bytes]] = []
        page_size = self.page_size
        while self._open:
            entry_index = next(iter(self._open))
            lpn = self._open.pop(entry_index)
            pending.append((lpn, self.region.read(self._slot_base(entry_index), page_size)))
            events.append(
                FlushEvent(
                    entry_index=entry_index,
                    lpn=lpn,
                    start_offset=entry_index * page_size,
                    end_offset=(entry_index + 1) * page_size,
                    forced=False,
                )
            )
        if pending:
            if self.nand_io_enabled:
                self.ftl.write_many(pending)
            self._c_flushes.add(len(pending))
        return events

    def resume(self, next_index: int) -> None:
        """Rebind an empty pool after remount: the next entry to open maps
        to vLog page ``base_lpn + next_index`` (the durable tail)."""
        if self._open:
            raise PackingError("cannot resume a buffer with open entries")
        self._next_index = next_index

    # --- data access ------------------------------------------------------------

    def _entry_for(self, offset: int) -> int:
        index = offset // self.page_size
        if index not in self._open:
            raise PackingError(
                f"offset {offset} is in entry {index}, which is not open"
            )
        return index

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Firmware write into the buffer (segmented across entries)."""
        in_entry = offset % self.page_size
        if len(data) <= self.page_size - in_entry:
            # Fits inside one entry — the overwhelmingly common case.
            index = self._entry_for(offset)
            self._dram_write(
                self._region_base + self._slot_base(index) + in_entry, data
            )
            return
        pos = 0
        while pos < len(data):
            index = self._entry_for(offset + pos)
            in_entry = (offset + pos) % self.page_size
            take = min(len(data) - pos, self.page_size - in_entry)
            self.region.write(self._slot_base(index) + in_entry, data[pos : pos + take])
            pos += take

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        out = bytearray()
        pos = 0
        while pos < nbytes:
            index = self._entry_for(offset + pos)
            in_entry = (offset + pos) % self.page_size
            take = min(nbytes - pos, self.page_size - in_entry)
            out += self.region.read(self._slot_base(index) + in_entry, take)
            pos += take
        return bytes(out)

    def dma_page_targets(self, offset: int, wire_bytes: int) -> list[int]:
        """Absolute DRAM addresses for each 4 KiB page of a direct DMA.

        Each wire page lands wholly inside one entry because placements are
        page-aligned and the NAND page size is a multiple of 4 KiB.
        """
        if not is_aligned(offset, MEM_PAGE_SIZE):
            raise PackingError(f"direct DMA offset {offset} not page-aligned")
        if wire_bytes <= 0 or not is_aligned(wire_bytes, MEM_PAGE_SIZE):
            raise PackingError(f"direct DMA wire size {wire_bytes} not page-unit")
        targets = []
        for page_start in range(offset, offset + wire_bytes, MEM_PAGE_SIZE):
            index = self._entry_for(page_start)
            in_entry = page_start % self.page_size
            targets.append(self.region.abs_addr(self._slot_base(index) + in_entry))
        return targets

    # --- vLog integration ------------------------------------------------------

    def addr_of(self, offset: int, size: int) -> ValueAddress:
        """Translate a byte-space placement into a vLog address."""
        return ValueAddress(
            lpn=self.vlog.base_lpn + offset // self.page_size,
            offset=offset % self.page_size,
            size=size,
        )

    def unflushed_page(self, lpn: int) -> bytes | None:
        """vLog read-through: serve still-buffered pages (read-your-writes)."""
        index = lpn - self.vlog.base_lpn
        if index in self._open:
            return self._dram_read(
                self._region_base + self._slot_base(index), self.page_size
            )
        return None


# ---------------------------------------------------------------------------
# Packing policies
# ---------------------------------------------------------------------------

class PackingPolicy(ABC):
    """Placement strategy over the buffer's byte space."""

    kind: PackingPolicyKind

    def __init__(self, buffer: NandPageBuffer) -> None:
        self.buffer = buffer
        self.metrics = MetricSet(f"packing.{self.kind.value}")
        # finalize_value runs once per PUT: hold the counter, skip the
        # per-call registry lookup.
        self._c_values_placed = self.metrics.counter("values_placed")
        self._c_fragmentation = self.metrics.counter("fragmentation_bytes")
        self._c_backfill = self.metrics.counter("backfill_bytes")

    # --- abstract placement API ---------------------------------------------

    @abstractmethod
    def place_piggyback(self, value_size: int) -> Placement:
        """Choose where a piggyback-transferred value goes."""

    @abstractmethod
    def place_dma(self, value_size: int, wire_bytes: int) -> Placement:
        """Choose where a page-unit-DMA value goes.

        ``value_size`` is the whole value (hybrid tail included);
        ``wire_bytes`` is the page-unit DMA size.
        """

    @abstractmethod
    def flush_frontier(self) -> int:
        """Byte offset below which no future write can land."""

    @property
    @abstractmethod
    def required_addressing(self) -> AddressingScheme:
        """The vLog addressing granularity this policy needs (§3.4)."""

    # --- shared machinery --------------------------------------------------------

    def finalize_value(self) -> list[FlushEvent]:
        """Called after a value's bytes are all in; flushes complete entries."""
        self._c_values_placed._value += 1
        return self.buffer.flush_below(self.flush_frontier())

    def on_forced_flush(self, event: FlushEvent) -> None:
        """React to a pool-overflow flush (subclasses adjust pointers)."""

    def resume_at(self, offset: int) -> None:
        """Reposition the placement pointers after remount.

        ``offset`` is the page-aligned byte offset of the first reallocated
        vLog page; any in-page packing or backfill opportunity that existed
        before the crash is forfeited (that state was volatile).
        """
        raise PackingError(f"{type(self).__name__} cannot resume")

    def _open_handling_forced(self, end_offset: int) -> None:
        for event in self.buffer.open_through(end_offset):
            if event.forced:
                self.on_forced_flush(event)

    @property
    def fragmentation_bytes(self) -> int:
        """Buffer bytes written to NAND that carry no value data."""
        return self.metrics.counter("fragmentation_bytes").value

    @property
    def backfill_bytes(self) -> int:
        """Value bytes placed behind the DMA frontier (Backfill only)."""
        return self.metrics.counter("backfill_bytes").value


class BlockPacking(PackingPolicy):
    """Baseline: every value starts a fresh 4 KiB slot (§2.3's behavior)."""

    kind = PackingPolicyKind.BLOCK

    def __init__(self, buffer: NandPageBuffer) -> None:
        super().__init__(buffer)
        self._cursor = 0  # always 4 KiB aligned

    def place_piggyback(self, value_size: int) -> Placement:
        start = self._cursor
        consumed = align_up(value_size, MEM_PAGE_SIZE)
        self._cursor += consumed
        self._c_fragmentation.add(consumed - value_size)
        self._open_handling_forced(self._cursor)
        return Placement(value_offset=start, dma_target=None)

    def place_dma(self, value_size: int, wire_bytes: int) -> Placement:
        start = self._cursor
        consumed = align_up(value_size, MEM_PAGE_SIZE)
        self._cursor += consumed
        self._c_fragmentation.add(consumed - value_size)
        self._open_handling_forced(start + max(consumed, wire_bytes))
        return Placement(value_offset=start, dma_target=start)

    def flush_frontier(self) -> int:
        return self._cursor

    def on_forced_flush(self, event: FlushEvent) -> None:
        self._cursor = max(self._cursor, event.end_offset)

    def resume_at(self, offset: int) -> None:
        self._cursor = offset

    @property
    def required_addressing(self) -> AddressingScheme:
        return AddressingScheme.PAGE


class AllPacking(PackingPolicy):
    """KAML-style log: pack everything at the WP, memcpy'ing DMA values
    when the WP is not page-aligned (§3.3.1)."""

    kind = PackingPolicyKind.ALL

    def __init__(self, buffer: NandPageBuffer) -> None:
        super().__init__(buffer)
        self._wp = 0

    def place_piggyback(self, value_size: int) -> Placement:
        start = self._wp
        self._wp += value_size
        self._open_handling_forced(self._wp)
        return Placement(value_offset=start, dma_target=None)

    def place_dma(self, value_size: int, wire_bytes: int) -> Placement:
        start = self._wp
        if is_aligned(start, MEM_PAGE_SIZE):
            # WP and DMA destination coincide: skip the memcpy (§3.3.1).
            self._wp += value_size
            self._open_handling_forced(start + max(value_size, wire_bytes))
            return Placement(value_offset=start, dma_target=start)
        # Stage through scratch; controller memcpys to the WP.
        self._wp += value_size
        self._open_handling_forced(self._wp)
        return Placement(value_offset=start, dma_target=None)

    def flush_frontier(self) -> int:
        return self._wp

    def on_forced_flush(self, event: FlushEvent) -> None:
        self._wp = max(self._wp, event.end_offset)

    def resume_at(self, offset: int) -> None:
        self._wp = offset

    @property
    def required_addressing(self) -> AddressingScheme:
        return AddressingScheme.FINE


class SelectivePacking(PackingPolicy):
    """Pack piggybacked values only; DMA values stay page-aligned, the gap
    before them is abandoned (§3.3.2, Figure 7a)."""

    kind = PackingPolicyKind.SELECTIVE

    def __init__(self, buffer: NandPageBuffer) -> None:
        super().__init__(buffer)
        self._wp = 0

    def place_piggyback(self, value_size: int) -> Placement:
        start = self._wp
        self._wp += value_size
        self._open_handling_forced(self._wp)
        return Placement(value_offset=start, dma_target=None)

    def place_dma(self, value_size: int, wire_bytes: int) -> Placement:
        start = align_up(self._wp, MEM_PAGE_SIZE)
        self._c_fragmentation.add(start - self._wp)
        # WP moves to the end of the DMA'd value (Figure 7a).
        self._wp = start + value_size
        self._open_handling_forced(start + max(value_size, wire_bytes))
        return Placement(value_offset=start, dma_target=start)

    def flush_frontier(self) -> int:
        return self._wp

    def on_forced_flush(self, event: FlushEvent) -> None:
        self._wp = max(self._wp, event.end_offset)

    def resume_at(self, offset: int) -> None:
        self._wp = offset

    @property
    def required_addressing(self) -> AddressingScheme:
        return AddressingScheme.FINE


class BackfillPacking(PackingPolicy):
    """Selective packing + backfilling via the DMA Log Table (§3.3.3).

    DMA values land page-aligned at the *DMA frontier* and are logged in
    the DLT; the WP stays behind, and piggybacked values keep filling the
    space before (and the gaps between) DMA regions.
    """

    kind = PackingPolicyKind.BACKFILL

    def __init__(self, buffer: NandPageBuffer, dlt: DMALogTable) -> None:
        super().__init__(buffer)
        self.dlt = dlt
        self._wp = 0
        self._dma_frontier = 0

    # --- WP maneuvering ------------------------------------------------------

    def _skip_colliding_regions(self, value_size: int) -> None:
        """Advance the WP past DMA regions the value would collide with —
        the O(1)-per-step check of §3.3.3."""
        while not self.dlt.is_empty:
            oldest = self.dlt.oldest()
            if self._wp + value_size <= oldest.start:
                return
            lost = max(0, oldest.start - self._wp)
            self._c_fragmentation.add(lost)
            self._wp = max(self._wp, oldest.end)
            self.dlt.consume_oldest()

    def place_piggyback(self, value_size: int) -> Placement:
        wp = self._wp
        end = wp + value_size
        dlt = self.dlt
        buffer = self.buffer
        # Fast path — no colliding DMA region ahead and the covering
        # buffer entries are already open: the placement reduces to
        # advancing the WP. Exactly the state changes of the loop below
        # when _skip_colliding_regions and open_through both no-op.
        if (dlt._count == 0 or end <= dlt._ring[dlt._head].start) and (
            end <= buffer._next_index * buffer.page_size
        ):
            self._wp = end
            if wp < self._dma_frontier:
                self._c_backfill.add(value_size)
            return Placement(value_offset=wp, dma_target=None)
        while True:
            self._skip_colliding_regions(value_size)
            wp_before = self._wp
            self._open_handling_forced(self._wp + value_size)
            if self._wp == wp_before:
                break
            # A forced flush moved the WP; re-check DLT collisions.
        start = self._wp
        self._wp += value_size
        if start < self._dma_frontier:
            self._c_backfill.add(value_size)
        return Placement(value_offset=start, dma_target=None)

    def place_dma(self, value_size: int, wire_bytes: int) -> Placement:
        start = align_up(max(self._wp, self._dma_frontier), MEM_PAGE_SIZE)
        evicted = self.dlt.push(DLTEntry(start=start, size=value_size))
        if evicted is not None:
            # Backfill opportunity lost: the WP may no longer pack below
            # the evicted region's end.
            lost = max(0, evicted.end - self._wp)
            if lost:
                self._c_fragmentation.add(
                    max(0, evicted.start - self._wp)
                )
            self._wp = max(self._wp, evicted.end)
        self._dma_frontier = start + value_size
        self._open_handling_forced(start + max(value_size, wire_bytes))
        return Placement(value_offset=start, dma_target=start)

    def flush_frontier(self) -> int:
        return self._wp

    def on_forced_flush(self, event: FlushEvent) -> None:
        if self._wp < event.end_offset:
            self._c_fragmentation.add(
                event.end_offset - self._wp
            )
            self._wp = event.end_offset
        self.dlt.consume_below(self._wp)
        self._dma_frontier = max(self._dma_frontier, self._wp)

    def resume_at(self, offset: int) -> None:
        # The DLT is device DRAM — empty on a freshly-built policy; any
        # backfillable gaps before the crash are gone for good.
        self._wp = offset
        self._dma_frontier = offset

    @property
    def required_addressing(self) -> AddressingScheme:
        return AddressingScheme.FINE


class IntegratedPacking(BackfillPacking):
    """Extension: All Packing for small DMA values, Backfill for large ones.

    The paper closes §4.3 observing that "we can design a controller that
    effectively adapts to any workload by integrating the strengths of
    both" All Packing (dense, memcpy-heavy) and Backfilling (copy-free,
    gap-prone). This policy does exactly that: a DMA value at or below
    ``copy_threshold`` is memcpy'd to the write pointer (its gap would cost
    more NAND space than the copy costs CPU); a larger value stays
    page-aligned and its gap is logged for backfilling.
    """

    kind = PackingPolicyKind.INTEGRATED

    def __init__(
        self, buffer: NandPageBuffer, dlt: DMALogTable, copy_threshold: int
    ) -> None:
        super().__init__(buffer, dlt)
        if copy_threshold < 0:
            raise PackingError(f"negative copy threshold {copy_threshold}")
        self.copy_threshold = copy_threshold
        self.metrics.counter("dma_copied")
        self.metrics.counter("dma_aligned")

    def place_dma(self, value_size: int, wire_bytes: int) -> Placement:
        if value_size > self.copy_threshold:
            self.metrics.counter("dma_aligned").add(1)
            return super().place_dma(value_size, wire_bytes)
        # All-style: land the value at the WP. First make room exactly as a
        # piggybacked value would (the WP must clear colliding DMA regions).
        while True:
            self._skip_colliding_regions(value_size)
            wp_before = self._wp
            self._open_handling_forced(self._wp + value_size)
            if self._wp == wp_before:
                break
        start = self._wp
        direct = (
            is_aligned(start, MEM_PAGE_SIZE)
            and (self.dlt.is_empty or start + wire_bytes <= self.dlt.oldest().start)
        )
        if direct:
            # Wire overrun bytes beyond the value land in free space only
            # (checked against the oldest DMA region above) and will be
            # overwritten by later packing.
            self._open_handling_forced(start + max(value_size, wire_bytes))
            if self._wp > start:
                # Opening the wire span force-flushed the entry holding the
                # placement; fall back to a staged copy at the new WP.
                start = self._wp
                direct = False
                self._open_handling_forced(start + value_size)
        self._wp = start + value_size
        if start < self._dma_frontier:
            self._c_backfill.add(value_size)
        self.metrics.counter("dma_copied").add(1)
        return Placement(value_offset=start, dma_target=start if direct else None)


def make_policy(
    config: BandSlimConfig, buffer: NandPageBuffer, vlog_pages: int
) -> PackingPolicy:
    """Instantiate the configured packing policy."""
    kind = config.packing
    if kind is PackingPolicyKind.BLOCK:
        return BlockPacking(buffer)
    if kind is PackingPolicyKind.ALL:
        return AllPacking(buffer)
    if kind is PackingPolicyKind.SELECTIVE:
        return SelectivePacking(buffer)
    if kind is PackingPolicyKind.BACKFILL:
        dlt = DMALogTable(
            capacity=config.dlt_capacity,
            nand_page_size=buffer.page_size,
            vlog_pages=vlog_pages,
        )
        return BackfillPacking(buffer, dlt)
    if kind is PackingPolicyKind.INTEGRATED:
        dlt = DMALogTable(
            capacity=config.dlt_capacity,
            nand_page_size=buffer.page_size,
            vlog_pages=vlog_pages,
        )
        return IntegratedPacking(
            buffer, dlt, copy_threshold=config.integrated_copy_threshold
        )
    raise PackingError(f"unhandled packing kind {kind}")
