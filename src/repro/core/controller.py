"""The BandSlim key-value controller: the device-side firmware (§3.1, §3.3).

One :meth:`process_next` call fetches and fully handles a single command —
the synchronous regime of the paper's testbed. The controller:

* extracts piggybacked fragments from write/transfer commands and packs
  them at the policy-chosen offset (a firmware memcpy each, as §3.3.1
  describes);
* issues page-unit DMA for PRP-described values, either directly into the
  NAND page buffer (when the policy's placement is page-aligned) or through
  a scratch staging area followed by a memcpy to the write pointer;
* commits completed values to the LSM-tree with fine-grained vLog
  addresses, and serves GET/DELETE/EXIST/LIST from the tree.

Every memcpy is charged to the simulated clock and tallied per operation —
the data series of Fig 12(d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BandSlimConfig
from repro.core.packing import NandPageBuffer, PackingPolicy, Placement
from repro.errors import (
    BadBlockError,
    KeyNotFoundError,
    MediaError,
    NVMeError,
    PowerLossError,
    TransferFaultError,
)
from repro.faults.injector import FaultInjector
from repro.lsm.tree import LSMTree
from repro.memory.device import DRAMRegion
from repro.memory.dma import DMAEngine
from repro.memory.host import HostMemory
from repro.nvme.admin import (
    AdminOpcode,
    BandSlimCapabilities,
    CNS_CONTROLLER,
    FeatureId,
    LOG_PAGE_STATS,
    build_identify_data,
    build_stats_log,
    parse_admin_command,
)
from repro.nvme.kv import (
    ParsedWrite,
    TRANSFER_PIGGYBACK_CAPACITY,
    WRITE_PIGGYBACK_CAPACITY,
    parse_retrieve_command,
    parse_store_command,
    parse_transfer_command,
    parse_write_command,
)
from repro.nvme.opcodes import KVOpcode, StatusCode
from repro.nvme.prp import resolve_prp
from repro.nvme.queue import CompletionQueue, NVMeCompletion, SubmissionQueue
from repro.pcie.link import PCIeLink
from repro.sim.stats import MetricSet
from repro.units import MEM_PAGE_SIZE, align_down, pages_needed


@dataclass(slots=True)
class _PendingValue:
    """A value mid-assembly across write + trailing transfer commands."""

    key: bytes
    value_size: int
    value_offset: int
    cursor: int
    remaining: int


class BandSlimController:
    """Decodes KV commands and drives packing, DMA and the LSM-tree."""

    def __init__(
        self,
        config: BandSlimConfig,
        link: PCIeLink,
        host_mem: HostMemory,
        dma: DMAEngine,
        buffer: NandPageBuffer,
        policy: PackingPolicy,
        lsm: LSMTree,
        scratch: DRAMRegion,
        sq: SubmissionQueue,
        cq: CompletionQueue,
        injector: FaultInjector | None = None,
        tracer=None,
        journal=None,
    ) -> None:
        self.config = config
        self.link = link
        self.host_mem = host_mem
        self.dma = dma
        self.buffer = buffer
        self.policy = policy
        self.lsm = lsm
        self.scratch = scratch
        self.sq = sq
        self.cq = cq
        self.clock = link.clock
        self.latency = link.latency
        #: Optional repro.sim.trace.Tracer; every hook is one None check.
        self._tracer = tracer
        #: Raw opcode byte -> lowercase mnemonic, for trace span labels.
        self._opcode_names = {int(op): op.name.lower() for op in KVOpcode}
        self._pending: dict[int, _PendingValue] = {}
        self._flash = lsm.ftl.flash
        #: ReadCoalescer of the pipelined GET/EXIST batch in flight (None
        #: outside a batch — the serial read path never sees any of this).
        self._read_batch = None
        #: Durability journal (crash-consistency mode). When present, every
        #: committed value is recorded in the vLog value directory and the
        #: FLUSH command writes a durable manifest checkpoint.
        self._journal = journal
        #: Power-loss gate, cached so the common no-power-faults path pays
        #: one None check per command.
        self._power_injector = (
            injector
            if injector is not None and injector.power_enabled
            else None
        )
        self.metrics = MetricSet("controller")
        # Cached: bumped once per command / per memcpy on the hot path.
        self._c_commands_processed = self.metrics.counter("commands_processed")
        self._c_memcpy_bytes = self.metrics.counter("memcpy_bytes")
        self._s_memcpy_us_per_op = self.metrics.stat("memcpy_us_per_op")
        # Latency constants resolved once (the model is immutable): these
        # are charged once or more per command.
        self._cmd_process_us = self.latency.cmd_process_us
        self._memcpy_setup_us = self.latency.memcpy_setup_us
        self._memcpy_per_byte_us = self.latency.memcpy_per_byte_us
        if injector is not None:
            self.metrics.counter("media_errors")
            self.metrics.counter("internal_errors")
            self.metrics.counter("transfer_faults")
        self._op_memcpy_us = 0.0
        #: Open iterator cursors for SEEK/NEXT (iterator id -> last key).
        self._iterators: dict[int, bytes] = {}
        self._next_iterator_id = 1
        #: Admin queue pair (attached by the device assembly).
        self.admin_sq: SubmissionQueue | None = None
        self.admin_cq: CompletionQueue | None = None
        #: Callback invoked when SET FEATURES produces a new active config
        #: (the driver re-registers its planner through this).
        self._config_listeners: list = []
        #: Raw-opcode dispatch table (skips the enum lookup per command).
        self._handlers = {
            int(KVOpcode.FLUSH): self._handle_flush,
            int(KVOpcode.BANDSLIM_WRITE): self._handle_write,
            int(KVOpcode.BANDSLIM_TRANSFER): self._handle_transfer,
            int(KVOpcode.KV_STORE): self._handle_store,
            int(KVOpcode.BULK_PUT): self._handle_bulk_put,
            int(KVOpcode.KV_RETRIEVE): self._handle_retrieve,
            int(KVOpcode.KV_DELETE): self._handle_delete,
            int(KVOpcode.KV_EXIST): self._handle_exist,
            int(KVOpcode.KV_LIST): self._handle_list,
            int(KVOpcode.ITER_OPEN): self._handle_iter_open,
            int(KVOpcode.ITER_NEXT): self._handle_iter_next,
            int(KVOpcode.ITER_CLOSE): self._handle_iter_close,
        }

    # --- cost helpers -------------------------------------------------------

    def _charge_memcpy(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        cost = self._memcpy_setup_us + nbytes * self._memcpy_per_byte_us
        tracer = self._tracer
        if tracer is None:
            self.clock.advance(cost)
        else:
            t0 = self.clock.now_us
            self.clock.advance(cost)
            tracer.span(
                "controller", "memcpy", t0, self.clock.now_us,
                phase="memcpy", bytes=nbytes,
            )
        self._c_memcpy_bytes.add(nbytes)
        self._op_memcpy_us += cost

    def _commit_value(self, pending: _PendingValue) -> None:
        addr = self.buffer.addr_of(pending.value_offset, pending.value_size)
        self.lsm.put(pending.key, addr)
        if self._journal is not None:
            self._journal.record_value(pending.key, addr, self.lsm.last_op_seq)
        self.policy.finalize_value()
        self._s_memcpy_us_per_op.record(self._op_memcpy_us)
        self._op_memcpy_us = 0.0

    # --- main loop -----------------------------------------------------------

    def process_next(self) -> NVMeCompletion:
        """Fetch one command from the SQ, handle it, post the CQE.

        Device-side fault escalations (media errors the FTL could not
        recover, transient transfer faults) become NVMe statuses on the
        completion queue — the host sees a failed command, never a raw
        exception. Protocol-usage errors still raise: driving the simulator
        wrongly is a bug, not a fault.
        """
        cqe = self._process_one()
        self.cq.post(cqe)
        return cqe

    def process_next_deferred(self) -> tuple[NVMeCompletion, float]:
        """Handle one command with NAND time booked, not waited on.

        Returns ``(cqe, finish_us)`` without posting: the command's serial
        work (fetch, decode, DMA, memcpy) advances the clock as usual, but
        page programs and erases only book their intervals on the
        per-channel/per-way timeline. The finish time is when the last of
        those intervals ends — the pipelined driver posts and reaps the
        completion when virtual time reaches it, letting NAND work from
        several in-flight commands overlap across ways.
        """
        flash = self._flash
        flash.begin_deferred()
        try:
            cqe = self._process_one()
        finally:
            nand_end_us = flash.end_deferred()
        finish_us = self.clock.now_us
        if nand_end_us > finish_us:
            finish_us = nand_end_us
        return cqe, finish_us

    def begin_read_batch(self):
        """Arm deferred, page-coalesced NAND reads for a pipelined batch.

        Between this and :meth:`end_read_batch`, RETRIEVE/EXIST commands
        processed through :meth:`process_next_deferred` open a deferred-read
        window around their index probe + vLog read: reads book on the
        channel/way timeline instead of stalling the firmware clock, and
        in-flight reads of the same physical page share one sense/transfer
        booking (see :class:`~repro.sim.timeline.ReadCoalescer`). Returns
        the batch's coalescer for accounting.
        """
        from repro.sim.timeline import ReadCoalescer

        coalescer = ReadCoalescer()
        self._read_batch = coalescer
        self._flash.set_read_coalescer(coalescer)
        return coalescer

    def end_read_batch(self):
        """Disarm the read batch; returns its coalescer (for stats)."""
        coalescer = self._read_batch
        self._read_batch = None
        self._flash.set_read_coalescer(None)
        return coalescer

    def _process_one(self) -> NVMeCompletion:
        if self._power_injector is not None and self._power_injector.power_down(
            self.clock.now_us
        ):
            raise PowerLossError(
                f"power lost at {self.clock.now_us:.1f} us: device frozen",
                cut_us=self.clock.now_us,
            )
        cmd = self.sq.fetch()
        tracer = self._tracer
        if tracer is None:
            self.clock.advance(self._cmd_process_us)
        else:
            t0 = self.clock.now_us
            self.clock.advance(self._cmd_process_us)
            opcode = cmd.raw[0]
            tracer.span(
                "controller", "dispatch", t0, self.clock.now_us,
                phase="dispatch", cid=cmd.cid,
                opcode=self._opcode_names.get(opcode, f"0x{opcode:02x}"),
            )
        self._c_commands_processed.add(1)
        try:
            cqe = self._dispatch(cmd)
        except BadBlockError:
            self._pending.pop(cmd.cid, None)
            self.metrics.counter("internal_errors").add(1)
            cqe = NVMeCompletion(cid=cmd.cid, status=StatusCode.INTERNAL_ERROR)
        except MediaError:
            self._pending.pop(cmd.cid, None)
            self.metrics.counter("media_errors").add(1)
            cqe = NVMeCompletion(cid=cmd.cid, status=StatusCode.MEDIA_ERROR)
        except TransferFaultError:
            self._pending.pop(cmd.cid, None)
            self.metrics.counter("transfer_faults").add(1)
            cqe = NVMeCompletion(cid=cmd.cid, status=StatusCode.DEVICE_BUSY)
        return cqe

    def abort_pending(self, cid: int) -> None:
        """Drop the mid-assembly value for ``cid`` (driver gave up on it)."""
        self._pending.pop(cid, None)

    def _dispatch(self, cmd) -> NVMeCompletion:
        handler = self._handlers.get(cmd.raw[0])
        if handler is not None:
            return handler(cmd)
        # An unknown opcode byte raises (protocol misuse); a valid but
        # unhandled opcode completes with INVALID_OPCODE, as before.
        _ = cmd.opcode
        return NVMeCompletion(cid=cmd.cid, status=StatusCode.INVALID_OPCODE)

    # --- write path -----------------------------------------------------------

    def _handle_flush(self, cmd) -> NVMeCompletion:
        """NVMe FLUSH: drain volatile state, then checkpoint the manifest.

        On completion everything acked before this command is durable —
        the write buffer and MemTable have reached NAND, and the manifest
        records the SSTable level layout plus the index-operation sequence
        number up to which vLog directory entries are checkpointed.
        """
        self.flush_all()
        if self._journal is not None:
            self._journal.write_manifest(self.lsm)
        return NVMeCompletion(cid=cmd.cid, status=StatusCode.SUCCESS)

    def _handle_write(self, cmd) -> NVMeCompletion:
        req = parse_write_command(cmd)
        if req.value_size > self.config.max_value_bytes:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        if req.hybrid:
            pending = self._start_hybrid(req)
        else:
            pending = self._start_piggyback(req)
        self._pending[req.cid] = pending
        if req.final:
            if pending.remaining != 0:
                raise NVMeError(
                    f"write command marked final with {pending.remaining} "
                    "bytes outstanding"
                )
            del self._pending[req.cid]
            self._commit_value(pending)
        return NVMeCompletion(cid=req.cid, status=StatusCode.SUCCESS)

    def _start_piggyback(self, req: ParsedWrite) -> _PendingValue:
        placement = self.policy.place_piggyback(req.value_size)
        if req.inline:
            # Extract from the command fields and copy to the WP (§3.3.1).
            self.buffer.write_bytes(placement.value_offset, req.inline)
            self._charge_memcpy(len(req.inline))
        return _PendingValue(
            key=req.key,
            value_size=req.value_size,
            value_offset=placement.value_offset,
            cursor=placement.value_offset + len(req.inline),
            remaining=req.value_size - len(req.inline),
        )

    def _start_hybrid(self, req: ParsedWrite) -> _PendingValue:
        head = align_down(req.value_size, MEM_PAGE_SIZE)
        if head == 0:
            raise NVMeError("hybrid write with no page-aligned head")
        wire = head  # the head is an exact page multiple
        placement = self.policy.place_dma(req.value_size, wire)
        buf = resolve_prp(self.host_mem, self.link, req.prp1, req.prp2, head)
        self._execute_dma(placement, buf, deliver_bytes=head)
        return _PendingValue(
            key=req.key,
            value_size=req.value_size,
            value_offset=placement.value_offset,
            cursor=placement.value_offset + head,
            remaining=req.value_size - head,
        )

    def _handle_transfer(self, cmd) -> NVMeCompletion:
        req = parse_transfer_command(cmd)
        try:
            pending = self._pending[req.cid]
        except KeyError:
            raise NVMeError(
                f"transfer command for cid {req.cid} with no pending write"
            ) from None
        take = min(TRANSFER_PIGGYBACK_CAPACITY, pending.remaining)
        if take == 0:
            raise NVMeError(f"transfer command for completed value (cid {req.cid})")
        fragment = req.area[:take]
        self.buffer.write_bytes(pending.cursor, fragment)
        self._charge_memcpy(take)
        pending.cursor += take
        pending.remaining -= take
        if req.final:
            if pending.remaining != 0:
                raise NVMeError(
                    f"final transfer with {pending.remaining} bytes outstanding"
                )
            del self._pending[req.cid]
            self._commit_value(pending)
        return NVMeCompletion(cid=req.cid, status=StatusCode.SUCCESS)

    def _handle_store(self, cmd) -> NVMeCompletion:
        req = parse_store_command(cmd)
        if req.value_size > self.config.max_value_bytes:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        wire = pages_needed(req.value_size) * MEM_PAGE_SIZE
        placement = self.policy.place_dma(req.value_size, wire)
        buf = resolve_prp(self.host_mem, self.link, req.prp1, req.prp2, req.value_size)
        self._execute_dma(placement, buf, deliver_bytes=req.value_size)
        pending = _PendingValue(
            key=req.key,
            value_size=req.value_size,
            value_offset=placement.value_offset,
            cursor=placement.value_offset + req.value_size,
            remaining=0,
        )
        self._commit_value(pending)
        return NVMeCompletion(cid=req.cid, status=StatusCode.SUCCESS)

    def _handle_bulk_put(self, cmd) -> NVMeCompletion:
        """Host-side-batched ingest (the §1 comparator).

        The whole payload arrives as one page-unit DMA into scratch; the
        firmware then pays per-pair unpack cost plus a memcpy per value to
        pack it — the overheads the paper charges this approach with.
        """
        from repro.nvme.bulk import parse_bulk_put_command, unpack_bulk_payload

        cid, payload_size, pair_count, prp1, prp2 = parse_bulk_put_command(cmd)
        if payload_size > self.scratch.size:
            return NVMeCompletion(cid=cid, status=StatusCode.INVALID_FIELD)
        buf = resolve_prp(self.host_mem, self.link, prp1, prp2, payload_size)
        self.dma.host_to_device(buf, self.scratch.abs_addr(0))
        payload = self.scratch.read(0, payload_size)
        pairs = unpack_bulk_payload(payload)
        if len(pairs) != pair_count:
            return NVMeCompletion(cid=cid, status=StatusCode.INVALID_FIELD)
        for key, value in pairs:
            self.clock.advance(self.latency.unpack_per_pair_us)
            placement = self.policy.place_piggyback(len(value))
            self.buffer.write_bytes(placement.value_offset, value)
            self._charge_memcpy(len(value))
            pending = _PendingValue(
                key=key,
                value_size=len(value),
                value_offset=placement.value_offset,
                cursor=placement.value_offset + len(value),
                remaining=0,
            )
            self._commit_value(pending)
        return NVMeCompletion(
            cid=cid, status=StatusCode.SUCCESS, result=len(pairs)
        )

    def _execute_dma(self, placement: Placement, buf, deliver_bytes: int) -> None:
        """Move a PRP-described payload to its placement.

        Direct placements land in the buffer via scatter DMA; indirect ones
        stage in scratch and pay the §3.3.1 memcpy of the value bytes.
        """
        if placement.direct:
            targets = self.buffer.dma_page_targets(
                placement.dma_target, buf.wire_bytes
            )
            self.dma.host_to_device_scatter(buf, targets)
            return
        if buf.wire_bytes > self.scratch.size:
            raise NVMeError(
                f"DMA of {buf.wire_bytes} bytes exceeds scratch of "
                f"{self.scratch.size}"
            )
        self.dma.host_to_device(buf, self.scratch.abs_addr(0))
        data = self.scratch.read(0, deliver_bytes)
        self.buffer.write_bytes(placement.value_offset, data)
        self._charge_memcpy(deliver_bytes)

    # --- read path ----------------------------------------------------------------

    def _handle_retrieve(self, cmd) -> NVMeCompletion:
        req = parse_retrieve_command(cmd)
        if self._read_batch is not None:
            # Pipelined batch: the index probe's SSTable reads and the vLog
            # value read book on the timeline (chained — the probe resolves
            # the value's address) instead of stalling the firmware clock,
            # so NAND waits of in-flight GETs overlap across ways.
            flash = self._flash
            flash.begin_deferred_reads()
            try:
                try:
                    addr = self.lsm.get_address(req.key)
                except KeyNotFoundError:
                    return NVMeCompletion(
                        cid=req.cid, status=StatusCode.KEY_NOT_FOUND
                    )
                if addr.size > req.buffer_size:
                    return NVMeCompletion(
                        cid=req.cid,
                        status=StatusCode.CAPACITY_EXCEEDED,
                        result=addr.size,
                    )
                data = self.lsm.vlog.read(addr)
            finally:
                flash.end_deferred_reads()
        else:
            try:
                addr = self.lsm.get_address(req.key)
            except KeyNotFoundError:
                return NVMeCompletion(cid=req.cid, status=StatusCode.KEY_NOT_FOUND)
            if addr.size > req.buffer_size:
                return NVMeCompletion(
                    cid=req.cid, status=StatusCode.CAPACITY_EXCEEDED, result=addr.size
                )
            data = self.lsm.vlog.read(addr)
        return self._dma_to_host(req.cid, req.prp1, req.prp2, req.buffer_size, data)

    def _dma_to_host(
        self, cid: int, prp1: int, prp2: int, buffer_size: int, data: bytes
    ) -> NVMeCompletion:
        """Stage ``data`` in scratch and DMA it back in page units."""
        self.scratch.write(0, data)
        self._charge_memcpy(len(data))
        host_buf = resolve_prp(self.host_mem, self.link, prp1, prp2, buffer_size)
        n_pages = pages_needed(len(data))
        if n_pages == len(host_buf.pages):
            out = host_buf  # full-buffer DMA: no need to re-wrap the pages
        else:
            out = type(host_buf)(pages=host_buf.pages[:n_pages], length=len(data))
        self.dma.device_to_host(self.scratch.abs_addr(0), out)
        return NVMeCompletion(cid=cid, status=StatusCode.SUCCESS, result=len(data))

    def _handle_delete(self, cmd) -> NVMeCompletion:
        key = cmd.key
        if not self.lsm.exists(key):
            return NVMeCompletion(cid=cmd.cid, status=StatusCode.KEY_NOT_FOUND)
        self.lsm.delete(key)
        return NVMeCompletion(cid=cmd.cid, status=StatusCode.SUCCESS)

    def _handle_exist(self, cmd) -> NVMeCompletion:
        batched = self._read_batch is not None
        if batched:
            self._flash.begin_deferred_reads()
        try:
            addr = self.lsm.get_address(cmd.key)
        except KeyNotFoundError:
            return NVMeCompletion(cid=cmd.cid, status=StatusCode.KEY_NOT_FOUND)
        finally:
            if batched:
                self._flash.end_deferred_reads()
        return NVMeCompletion(cid=cmd.cid, status=StatusCode.SUCCESS, result=addr.size)

    def _handle_list(self, cmd) -> NVMeCompletion:
        """KV_LIST: serialize up to ``max_keys`` keys >= start_key to host.

        Wire format in the response pages: count:u32, then (klen:u8, key)*.
        """
        start_key = cmd.key
        max_keys = cmd.value_size
        buffer_size = pages_needed(1) * MEM_PAGE_SIZE  # one page of keys
        out = bytearray(4)
        count = 0
        for key, _addr in self.lsm.scan_from(start_key):
            blob = bytes([len(key)]) + key
            if len(out) + len(blob) > buffer_size or count >= max_keys:
                break
            out += blob
            count += 1
        out[0:4] = count.to_bytes(4, "little")
        return self._dma_to_host(cmd.cid, cmd.prp1, cmd.prp2, buffer_size, bytes(out))

    # --- device-side iterators (the [22] SEEK/NEXT interface) --------------------

    def _handle_iter_open(self, cmd) -> NVMeCompletion:
        """SEEK: open a cursor at the first key >= start_key."""
        iterator_id = self._next_iterator_id
        self._next_iterator_id += 1
        self._iterators[iterator_id] = cmd.key
        return NVMeCompletion(
            cid=cmd.cid, status=StatusCode.SUCCESS, result=iterator_id
        )

    def _handle_iter_next(self, cmd) -> NVMeCompletion:
        """NEXT: fill the host buffer with as many (key, value) records as
        fit, resolving values from the vLog device-side."""
        from repro.nvme.iterator import ITER_EXHAUSTED_FLAG, pack_batch

        iterator_id = cmd.get_dword(13)
        if iterator_id not in self._iterators:
            return NVMeCompletion(cid=cmd.cid, status=StatusCode.INVALID_FIELD)
        buffer_size = cmd.value_size
        if buffer_size > self.scratch.size:
            return NVMeCompletion(cid=cmd.cid, status=StatusCode.INVALID_FIELD)
        cursor = self._iterators[iterator_id]
        pairs: list[tuple[bytes, bytes]] = []
        used = 4  # batch header
        exhausted = True
        last_key = cursor
        for key, addr in self.lsm.scan_from(cursor):
            record_len = 1 + len(key) + 4 + addr.size
            if used + record_len > buffer_size:
                exhausted = False
                break
            pairs.append((key, self.lsm.vlog.read(addr)))
            used += record_len
            last_key = key + b"\x00"  # resume strictly after this key
        if not pairs and not exhausted:
            # The next record alone exceeds the batch buffer: the host must
            # retry with a bigger one (no silent stall).
            return NVMeCompletion(
                cid=cmd.cid, status=StatusCode.CAPACITY_EXCEEDED
            )
        blob, taken = pack_batch(pairs, buffer_size)
        assert taken == len(pairs)
        self._iterators[iterator_id] = last_key
        cqe = self._dma_to_host(cmd.cid, cmd.prp1, cmd.prp2, buffer_size, blob)
        result = taken | (ITER_EXHAUSTED_FLAG if exhausted else 0)
        return NVMeCompletion(cid=cqe.cid, status=cqe.status, result=result)

    def _handle_iter_close(self, cmd) -> NVMeCompletion:
        iterator_id = cmd.get_dword(13)
        if self._iterators.pop(iterator_id, None) is None:
            return NVMeCompletion(cid=cmd.cid, status=StatusCode.INVALID_FIELD)
        return NVMeCompletion(cid=cmd.cid, status=StatusCode.SUCCESS)

    # --- admin command set (paper §1: "device identification to device
    # management" stays NVMe-compatible) ---------------------------------------

    def attach_admin_queues(self, sq: SubmissionQueue, cq: CompletionQueue) -> None:
        """Wire the admin queue pair (qid 0) into the controller."""
        self.admin_sq = sq
        self.admin_cq = cq

    def on_config_change(self, listener) -> None:
        """Register a callable(new_config) fired after SET FEATURES."""
        self._config_listeners.append(listener)

    def _apply_config(self, new_config) -> None:
        self.config = new_config
        for listener in self._config_listeners:
            listener(new_config)

    def capabilities(self) -> BandSlimCapabilities:
        """The capability block advertised in IDENTIFY's vendor area."""
        return BandSlimCapabilities(
            write_piggyback_capacity=WRITE_PIGGYBACK_CAPACITY,
            transfer_piggyback_capacity=TRANSFER_PIGGYBACK_CAPACITY,
            nand_page_size=self.buffer.page_size,
            buffer_entries=self.buffer.pool_entries,
            dlt_capacity=self.config.dlt_capacity,
            transfer_mode=self.config.transfer_mode.value,
            packing_policy=self.config.packing.value,
            threshold1=self.config.threshold1,
            threshold2=self.config.threshold2,
        )

    def process_next_admin(self) -> NVMeCompletion:
        """Fetch and handle one admin command."""
        if self.admin_sq is None or self.admin_cq is None:
            raise NVMeError("admin queues not attached")
        cmd = self.admin_sq.fetch()
        t0 = self.clock.now_us
        self.clock.advance(self.latency.cmd_process_us)
        if self._tracer is not None:
            self._tracer.span(
                "controller", "admin_dispatch", t0, self.clock.now_us,
                phase="dispatch", cid=cmd.cid,
            )
        self._c_commands_processed.add(1)
        req = parse_admin_command(cmd)
        if req.opcode is AdminOpcode.IDENTIFY:
            cqe = self._handle_identify(req)
        elif req.opcode is AdminOpcode.GET_LOG_PAGE:
            cqe = self._handle_get_log_page(req)
        elif req.opcode is AdminOpcode.SET_FEATURES:
            cqe = self._handle_set_features(req)
        elif req.opcode is AdminOpcode.GET_FEATURES:
            cqe = self._handle_get_features(req)
        else:
            cqe = NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_OPCODE)
        self.admin_cq.post(cqe)
        return cqe

    def _handle_identify(self, req) -> NVMeCompletion:
        if req.cdw10 != CNS_CONTROLLER:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        data = build_identify_data(self.capabilities())
        return self._dma_to_host(req.cid, req.prp1, req.prp2, len(data), data)

    def _handle_get_log_page(self, req) -> NVMeCompletion:
        if req.cdw10 & 0xFF != LOG_PAGE_STATS:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        flash = self.lsm.ftl.flash
        stats = {
            "nand_page_programs": flash.page_programs,
            "nand_page_reads": flash.page_reads,
            "nand_block_erases": flash.block_erases,
            "buffer_flushes": self.buffer.metrics.counter("flushes").value,
            "buffer_forced_flushes": self.buffer.metrics.counter(
                "forced_flushes"
            ).value,
            "lsm_flushes": self.lsm.flush_count,
            "lsm_compactions": self.lsm.compaction_count,
            "memcpy_bytes": self.metrics.counter("memcpy_bytes").value,
            "commands_processed": self.metrics.counter("commands_processed").value,
        }
        data = build_stats_log(stats)
        return self._dma_to_host(req.cid, req.prp1, req.prp2, len(data), data)

    def _feature_value(self, fid: FeatureId) -> int:
        cfg = self.config
        if fid is FeatureId.THRESHOLD1:
            return cfg.threshold1
        if fid is FeatureId.THRESHOLD2:
            return cfg.threshold2
        if fid is FeatureId.ALPHA_MILLI:
            return round(cfg.alpha * 1000)
        return round(cfg.beta * 1000)

    def _handle_get_features(self, req) -> NVMeCompletion:
        try:
            fid = FeatureId(req.cdw10)
        except ValueError:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        return NVMeCompletion(
            cid=req.cid, status=StatusCode.SUCCESS, result=self._feature_value(fid)
        )

    def _handle_set_features(self, req) -> NVMeCompletion:
        try:
            fid = FeatureId(req.cdw10)
        except ValueError:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        value = req.cdw11
        try:
            if fid is FeatureId.THRESHOLD1:
                new = self.config.with_overrides(threshold1=value)
            elif fid is FeatureId.THRESHOLD2:
                new = self.config.with_overrides(threshold2=value)
            elif fid is FeatureId.ALPHA_MILLI:
                new = self.config.with_overrides(alpha=value / 1000)
            else:
                new = self.config.with_overrides(beta=value / 1000)
        except Exception:
            return NVMeCompletion(cid=req.cid, status=StatusCode.INVALID_FIELD)
        self._apply_config(new)
        return NVMeCompletion(
            cid=req.cid, status=StatusCode.SUCCESS, result=self._feature_value(fid)
        )

    # --- maintenance ------------------------------------------------------------

    def flush_all(self) -> None:
        """Drain the buffer and the MemTable (clean shutdown).

        Draining seals partially-filled entries, so the packing policy must
        advance its pointers past them — future placements start on a fresh
        logical page (the sealed pages' tail space is forfeited).
        """
        if self._pending:
            raise NVMeError(f"{len(self._pending)} values still mid-transfer")
        for event in self.buffer.flush_all():
            self.policy.on_forced_flush(event)
        if self.config.nand_io_enabled:
            self.lsm.flush_memtable()
