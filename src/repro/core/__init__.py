"""BandSlim core: fine-grained value transfer + fine-grained value packing.

This package is the paper's contribution (§3): the key-value driver with
piggyback/hybrid/adaptive transfer planning, the key-value controller with
the four NAND page buffer packing policies, the DMA Log Table, and the
threshold calibration benchmark.
"""

from repro.core.config import (
    BandSlimConfig,
    PackingPolicyKind,
    TransferMode,
    PRESETS,
    preset,
)
from repro.core.dlt import DMALogTable, DLTEntry
from repro.core.transfer import TransferPlan, TransferPlanner
from repro.core.packing import (
    AllPacking,
    BackfillPacking,
    BlockPacking,
    IntegratedPacking,
    NandPageBuffer,
    PackingPolicy,
    SelectivePacking,
    make_policy,
)
from repro.core.controller import BandSlimController
from repro.core.driver import BandSlimDriver
from repro.core.thresholds import CalibrationResult, ThresholdCalibrator

__all__ = [
    "BandSlimConfig",
    "PackingPolicyKind",
    "TransferMode",
    "PRESETS",
    "preset",
    "DMALogTable",
    "DLTEntry",
    "TransferPlan",
    "TransferPlanner",
    "NandPageBuffer",
    "PackingPolicy",
    "BlockPacking",
    "AllPacking",
    "SelectivePacking",
    "BackfillPacking",
    "IntegratedPacking",
    "make_policy",
    "BandSlimController",
    "BandSlimDriver",
    "ThresholdCalibrator",
    "CalibrationResult",
]
