"""Transfer planning: how a value's bytes get to the device (§3.2).

Given a value size and the configured mode/thresholds, the planner decides
the exact command sequence the driver will emit:

* ``PIGGYBACK`` — up to 35 B inline in the write command, remainder in
  56 B trailing transfer commands;
* ``PRP`` — a classic page-unit DMA described by the write command's PRP
  fields (the Baseline path);
* ``HYBRID`` — the page-aligned head via PRP on the write command, the
  sub-page tail piggybacked on trailing transfer commands.

The plan is pure data: the driver executes it, the tests assert on it, and
the adaptive policy's decisions (Fig 10) are auditable from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.config import BandSlimConfig, TransferMode
from repro.errors import ConfigError, NVMeError
from repro.nvme.kv import TRANSFER_PIGGYBACK_CAPACITY, WRITE_PIGGYBACK_CAPACITY
from repro.units import (
    MEM_PAGE_SIZE,
    NVME_COMMAND_SIZE,
    align_down,
    pages_needed,
    split_sizes,
)


class TransferMethod(enum.Enum):
    """The concrete mechanism chosen for one value."""

    PIGGYBACK = "piggyback"
    PRP = "prp"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class TransferPlan:
    """The exact command breakdown for shipping one value."""

    method: TransferMethod
    value_size: int
    #: Bytes inline in the write command's 35-byte area (piggyback only).
    inline_bytes: int
    #: Sizes of trailing transfer-command fragments, in order.
    trailing_fragments: tuple[int, ...]
    #: Page-unit DMA size in whole memory pages (PRP/hybrid head).
    dma_pages: int

    def __post_init__(self) -> None:
        covered = (
            self.inline_bytes
            + sum(self.trailing_fragments)
            + (
                min(self.dma_pages * MEM_PAGE_SIZE, self.value_size)
                if self.method is not TransferMethod.HYBRID
                else self.dma_pages * MEM_PAGE_SIZE
            )
        )
        if covered != self.value_size:
            raise NVMeError(
                f"plan covers {covered} bytes of a {self.value_size}-byte value"
            )

    @property
    def command_count(self) -> int:
        """Write command plus trailing transfer commands."""
        return 1 + len(self.trailing_fragments)

    @property
    def dma_wire_bytes(self) -> int:
        return self.dma_pages * MEM_PAGE_SIZE

    @property
    def piggybacked_bytes(self) -> int:
        return self.inline_bytes + sum(self.trailing_fragments)

    @property
    def dma_head_bytes(self) -> int:
        """Value bytes (not wire bytes) delivered by the DMA part."""
        if self.method is TransferMethod.HYBRID:
            return self.dma_pages * MEM_PAGE_SIZE
        if self.method is TransferMethod.PRP:
            return self.value_size
        return 0


class TransferPlanner:
    """Chooses and constructs :class:`TransferPlan`\\ s per the config."""

    def __init__(self, config: BandSlimConfig) -> None:
        self._cache: dict[int, TransferPlan] = {}
        self._config = config

    @property
    def config(self) -> BandSlimConfig:
        return self._config

    @config.setter
    def config(self, config: BandSlimConfig) -> None:
        # Plans are memoized per value size; any config swap (admin SET
        # FEATURES via the driver's on_config_change hook, or tests poking
        # the planner directly) may change thresholds/mode, so drop them.
        self._config = config
        self._cache.clear()

    # --- plan constructors ---------------------------------------------------

    @staticmethod
    def plan_piggyback(value_size: int) -> TransferPlan:
        """Pure piggybacking: 35 B inline + 56 B trailing fragments."""
        if value_size <= 0:
            raise NVMeError(f"cannot plan non-positive value size {value_size}")
        inline = min(value_size, WRITE_PIGGYBACK_CAPACITY)
        remaining = value_size - inline
        fragments = tuple(split_sizes(remaining, TRANSFER_PIGGYBACK_CAPACITY))
        return TransferPlan(
            method=TransferMethod.PIGGYBACK,
            value_size=value_size,
            inline_bytes=inline,
            trailing_fragments=fragments,
            dma_pages=0,
        )

    @staticmethod
    def plan_prp(value_size: int) -> TransferPlan:
        """Classic page-unit DMA of the whole (page-padded) value."""
        if value_size <= 0:
            raise NVMeError(f"cannot plan non-positive value size {value_size}")
        return TransferPlan(
            method=TransferMethod.PRP,
            value_size=value_size,
            inline_bytes=0,
            trailing_fragments=(),
            dma_pages=pages_needed(value_size),
        )

    @staticmethod
    def plan_hybrid(value_size: int) -> TransferPlan:
        """Page-aligned head via PRP + piggybacked sub-page tail.

        Degenerates to pure piggyback below one page (no head to DMA) and
        to pure PRP on exact page multiples (no tail).
        """
        if value_size <= 0:
            raise NVMeError(f"cannot plan non-positive value size {value_size}")
        head = align_down(value_size, MEM_PAGE_SIZE)
        tail = value_size - head
        if head == 0:
            return TransferPlanner.plan_piggyback(value_size)
        if tail == 0:
            return TransferPlanner.plan_prp(value_size)
        fragments = tuple(split_sizes(tail, TRANSFER_PIGGYBACK_CAPACITY))
        return TransferPlan(
            method=TransferMethod.HYBRID,
            value_size=value_size,
            inline_bytes=0,
            trailing_fragments=fragments,
            dma_pages=head // MEM_PAGE_SIZE,
        )

    # --- mode dispatch -----------------------------------------------------------

    def plan(self, value_size: int) -> TransferPlan:
        # Plans are pure functions of (config, value_size); memoize per
        # size. The size-vs-limit check stays outside the cache so an
        # oversize value raises even after a max_value_bytes decrease.
        if value_size > self.config.max_value_bytes:
            raise NVMeError(
                f"value of {value_size} bytes exceeds max_value_bytes "
                f"{self.config.max_value_bytes}"
            )
        cached = self._cache.get(value_size)
        if cached is not None:
            return cached
        mode = self.config.transfer_mode
        if mode is TransferMode.BASELINE:
            plan = self.plan_prp(value_size)
        elif mode is TransferMode.PIGGYBACK:
            plan = self.plan_piggyback(value_size)
        elif mode is TransferMode.HYBRID:
            plan = self.plan_hybrid(value_size)
        elif mode is TransferMode.ADAPTIVE:
            plan = self.plan_adaptive(value_size)
        else:
            raise ConfigError(f"unhandled transfer mode {mode}")
        self._cache[value_size] = plan
        return plan

    def plan_adaptive(self, value_size: int) -> TransferPlan:
        """The §3.2 threshold policy.

        * size ≤ α·threshold₁ → piggyback (small values dominate traffic);
        * otherwise, if the sub-page tail is non-zero, at most β·threshold₂,
          and there is at least one whole page to DMA → hybrid;
        * otherwise → PRP.
        """
        cfg = self.config
        if value_size <= cfg.effective_threshold1:
            return self.plan_piggyback(value_size)
        tail = value_size % MEM_PAGE_SIZE
        if (
            tail != 0
            and value_size > MEM_PAGE_SIZE
            and tail <= cfg.effective_threshold2
        ):
            return self.plan_hybrid(value_size)
        return self.plan_prp(value_size)

    # --- traffic prediction (used by calibration and tests) -----------------------

    def predicted_wire_bytes(self, plan: TransferPlan, overhead_per_cmd: int) -> int:
        """Exact link bytes this plan generates, given per-command overhead.

        ``overhead_per_cmd`` is SQE + CQE + doorbells (88 B on the default
        link); PRP-list fetches for >2-page transfers add 8 B per extra page.
        """
        total = plan.command_count * overhead_per_cmd
        total += plan.dma_wire_bytes
        if plan.dma_pages > 2:
            total += (plan.dma_pages - 1) * 8
        return total

    @staticmethod
    def command_bytes(plan: TransferPlan) -> int:
        """Submission-entry bytes alone (the 64 B × command count)."""
        return plan.command_count * NVME_COMMAND_SIZE
