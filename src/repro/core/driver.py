"""The BandSlim key-value driver: the host side of the stack (§3.1, §3.2).

The driver turns API calls into command sequences per the transfer plan and
submits them through the NVMe passthrough regime the paper's testbed uses:
**synchronous and serialized** — one command is submitted, the controller
processes it, the completion is reaped, and only then does the next command
go out (§4.2 attributes Piggyback's large-value degradation to exactly this
round-trip accumulation).

Per-operation response time is the simulated-clock delta across the whole
command sequence, including any NAND flush stalls the device incurred — the
quantity plotted in Figs 8–12.

:meth:`BandSlimDriver.put_many` is the multi-queue extension: up to
``config.queue_depth`` commands stay in flight, their completions parked on
a :class:`~repro.nvme.queue.CompletionScheduler` and reaped in NAND-finish
order, so programs to distinct channels/ways overlap in virtual time (see
docs/parallel-timing.md). At ``queue_depth=1`` it degenerates to the exact
synchronous loop above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BandSlimConfig
from repro.core.controller import BandSlimController
from repro.core.transfer import TransferMethod, TransferPlan, TransferPlanner
from repro.errors import CommandTimeoutError, KeyNotFoundError, NVMeError
from repro.faults.injector import FaultInjector
from repro.memory.host import HostMemory
from repro.nvme.admin import (
    BandSlimCapabilities,
    FeatureId,
    IDENTIFY_DATA_SIZE,
    STATS_LOG_SIZE,
    build_get_features_command,
    build_get_log_page_command,
    build_identify_command,
    build_set_features_command,
    identify_vendor_fields,
    parse_identify_data,
    parse_stats_log,
)
from repro.nvme.kv import (
    build_delete_command,
    build_exist_command,
    build_flush_command,
    build_list_command,
    build_retrieve_command,
    build_store_command,
    build_transfer_command,
    build_write_command,
)
from repro.nvme.opcodes import StatusCode
from repro.nvme.prp import PRPDescriptor, build_prp
from repro.nvme.queue import (
    CompletionQueue,
    CompletionScheduler,
    NVMeCompletion,
    SubmissionQueue,
)
from repro.pcie.link import PCIeLink
from repro.sim.stats import MetricSet
from repro.units import MEM_PAGE_SIZE


@dataclass(frozen=True, slots=True)
class OpResult:
    """Outcome of one driver operation, with its simulated latency."""

    latency_us: float
    commands: int
    status: StatusCode
    value: bytes | None = None

    @property
    def ok(self) -> bool:
        return self.status is StatusCode.SUCCESS


class _InflightPut:
    """Book-keeping for one PUT whose commands are in the pipeline."""

    __slots__ = ("index", "start_us", "remaining", "commands", "status", "op_id")

    def __init__(
        self, index: int, start_us: float, commands: int, op_id: int = 0
    ) -> None:
        self.index = index
        self.start_us = start_us
        self.remaining = commands
        self.commands = commands
        self.status = StatusCode.SUCCESS
        self.op_id = op_id


class _InflightGet:
    """Book-keeping for one GET whose command is in the pipeline."""

    __slots__ = ("index", "start_us", "op_id", "buf", "prp")

    def __init__(self, index: int, start_us: float, op_id: int, buf, prp) -> None:
        self.index = index
        self.start_us = start_us
        self.op_id = op_id
        self.buf = buf
        self.prp = prp


class BandSlimDriver:
    """User-facing PUT/GET/DELETE/EXIST/LIST over the simulated link."""

    def __init__(
        self,
        config: BandSlimConfig,
        link: PCIeLink,
        host_mem: HostMemory,
        controller: BandSlimController,
        sq: SubmissionQueue,
        cq: CompletionQueue,
        injector: FaultInjector | None = None,
        tracer=None,
    ) -> None:
        self.config = config
        #: Optional repro.sim.trace.Tracer; every hook is one None check.
        self._tracer = tracer
        self.link = link
        self.host_mem = host_mem
        self.controller = controller
        self.sq = sq
        self.cq = cq
        self.planner = TransferPlanner(config)
        self.clock = link.clock
        self._next_cid = 0
        #: cid of the in-flight multi-command PUT (for abort on give-up).
        self._active_put_cid: int | None = None
        #: Batched event-core fast path (repro.sim.engine); built lazily on
        #: the first eligible batch. ``_fused_enabled = False`` forces the
        #: generic pipeline — the equivalence tests diff the two.
        self._fused_enabled = True
        self._engine = None
        # Keep this side of the stack in sync when admin SET FEATURES
        # changes the device's active configuration.
        controller.on_config_change(self._adopt_config)
        self._injector = injector
        self.metrics = MetricSet("driver")
        # Cached: every operation records into these.
        self._s_put_latency = self.metrics.stat("put_latency_us")
        self._s_get_latency = self.metrics.stat("get_latency_us")
        self._c_puts = self.metrics.counter("puts")
        self._c_gets = self.metrics.counter("gets")
        # Exponential-bucket histograms back the p50/p99 the runner reports.
        self._h_put_latency = self.metrics.histogram("put_latency_us")
        self._h_get_latency = self.metrics.histogram("get_latency_us")
        if injector is not None or config.command_timeout_us > 0:
            self.metrics.counter("retries")
            self.metrics.counter("timeouts")
            self.metrics.counter("failed_ops")

    # --- plumbing ------------------------------------------------------------

    def _cid(self) -> int:
        cid = self._next_cid
        self._next_cid = (self._next_cid + 1) % 2**16
        return cid

    def _fused_eligible(self) -> bool:
        """True when a batch may run on the fused event core.

        The fused path replicates the generic pipeline bit-for-bit only in
        the plain regime: no tracer (spans need real per-command calls), no
        fault injector and no timeout (recovery is synchronous by design),
        no durability journal (journal hooks ride the real handlers), and
        no piggyback state parked from an aborted PUT.
        """
        controller = self.controller
        return (
            self._fused_enabled
            and self._tracer is None
            and self._injector is None
            and self.config.command_timeout_us == 0.0
            and controller._journal is None
            and controller._power_injector is None
            and not controller._pending
            # The engine writes the deferred-window flags directly; a live
            # window (impossible via the public API) would be clobbered.
            and controller._flash._deferred == 0
            and controller._flash._defer_reads == 0
        )

    def _fused_engine(self):
        if self._engine is None:
            from repro.sim.engine import FusedBatchEngine

            self._engine = FusedBatchEngine(self)
        return self._engine

    def _roundtrip(self, cmd) -> NVMeCompletion:
        """One synchronous passthrough round trip."""
        start = self.clock.now_us
        self.sq.submit(cmd)
        self.link.submit_command()
        self.controller.process_next()
        self.link.complete_command()
        cqe = self.cq.reap()
        raw = cmd.raw
        if cqe.cid != (raw[2] | (raw[3] << 8)):  # cid bytes, direct
            raise NVMeError(
                f"completion cid {cqe.cid} does not match command {cmd.cid}"
            )
        timeout = self.config.command_timeout_us
        if timeout > 0 and self.clock.now_us - start > timeout:
            self.metrics.counter("timeouts").add(1)
            raise CommandTimeoutError(
                f"command {cmd.cid} took {self.clock.now_us - start:.1f} us "
                f"(timeout {timeout:g} us)"
            )
        return cqe

    # --- fault recovery -------------------------------------------------------

    def _with_recovery(self, attempt, cleanup=None) -> NVMeCompletion:
        """Run one operation attempt; retry with exponential backoff.

        ``attempt`` is re-invoked (building fresh commands) after any
        retryable completion status or a command timeout, with the backoff
        charged to the *simulated* clock so fault-load latency figures
        include it. ``cleanup`` runs before each retry and before giving
        up, releasing device-side state of the abandoned attempt.
        """
        backoff = self.config.retry_backoff_us
        retries = 0
        while True:
            timed_out = False
            try:
                cqe = attempt()
            except CommandTimeoutError:
                timed_out = True
                cqe = None
            if cqe is not None and not cqe.status.retryable:
                return cqe
            if cleanup is not None:
                cleanup()
            if retries >= self.config.op_retry_limit:
                self.metrics.counter("failed_ops").add(1)
                if cqe is None:
                    raise CommandTimeoutError(
                        f"operation still timing out after {retries} retries"
                    )
                return cqe
            retries += 1
            self.metrics.counter("retries").add(1)
            t0 = self.clock.now_us
            self.clock.advance(backoff)
            if self._tracer is not None:
                self._tracer.span(
                    "driver", "backoff", t0, self.clock.now_us,
                    phase="backoff", retry=retries,
                    timed_out=timed_out,
                )
            backoff *= 2

    # --- PUT -----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> OpResult:
        """Store one KV pair using the configured transfer mode."""
        if not value:
            raise NVMeError("empty values are not supported by the KV interface")
        plan = self.planner.plan(len(value))
        tracer = self._tracer
        op_id = 0
        if tracer is not None:
            op_id = tracer.begin_op(
                "put", value_size=len(value), method=plan.method.value
            )
        start = self.clock.now_us
        if self._injector is None and self.config.command_timeout_us == 0.0:
            # No fault source and no timeout: one attempt is the common
            # (and, absent injected faults, only) case — skip the recovery
            # machinery. Retryable statuses still fall through to it.
            cqe = self._execute_put(key, value, plan)
            if cqe.status.retryable:
                self._abort_active_put()
                cqe = self._with_recovery(
                    lambda: self._execute_put(key, value, plan),
                    cleanup=self._abort_active_put,
                )
        else:
            cqe = self._with_recovery(
                lambda: self._execute_put(key, value, plan),
                cleanup=self._abort_active_put,
            )
        elapsed = self.clock.now_us - start
        self._s_put_latency.record(elapsed)
        self._h_put_latency.record(elapsed)
        self._c_puts.add(1)
        if tracer is not None:
            tracer.end_op(
                op_id, status=cqe.status.name, latency_us=elapsed,
                commands=plan.command_count,
            )
        return OpResult(
            latency_us=elapsed, commands=plan.command_count, status=cqe.status
        )

    # --- pipelined PUT (queue depth > 1) -------------------------------------

    def put_many(
        self,
        pairs,
        queue_depth: int | None = None,
    ) -> list[OpResult]:
        """Store many pairs with up to ``queue_depth`` commands in flight.

        Commands are still *processed* serially (one firmware core), but
        their NAND programs only book busy intervals on the channel/way
        timeline: a command's completion is delivered when virtual time
        reaches its NAND finish, so programs from different in-flight
        commands overlap on distinct ways. Completions are reaped in finish
        order, not submission order. ``queue_depth`` defaults to
        ``config.queue_depth``; at 1 (or with a fault injector attached,
        whose per-op retry protocol is inherently synchronous) this falls
        back to the sequential :meth:`put` loop.
        """
        qd = self.config.queue_depth if queue_depth is None else queue_depth
        if qd < 1:
            raise NVMeError(f"queue depth must be >= 1, got {qd}")
        if qd == 1 or self._injector is not None:
            return [self.put(key, value) for key, value in pairs]

        results: list[OpResult | None] = []
        inflight: dict[int, _InflightPut] = {}
        scheduler = CompletionScheduler()
        tracer = self._tracer
        #: op_id of the PUT whose commands are currently being submitted;
        #: submit() restores it after deliver_one() retargets the tracer.
        submit_op = 0

        def deliver_one() -> None:
            cqe, finish_us = scheduler.pop_earliest()
            if tracer is None:
                self.clock.advance_to(finish_us)
            else:
                # Attribute the wait for this command's NAND finish (and the
                # completion that follows) to the op it belongs to.
                tracer.current_op = inflight[cqe.cid].op_id
                t0 = self.clock.now_us
                self.clock.advance_to(finish_us)
                if self.clock.now_us > t0:
                    tracer.span(
                        "driver", "nand_wait", t0, self.clock.now_us,
                        phase="nand", cid=cqe.cid,
                    )
            self.cq.post(cqe)
            self.link.complete_command()
            reaped = self.cq.reap()
            rec = inflight[reaped.cid]
            rec.remaining -= 1
            if not reaped.ok and rec.status is StatusCode.SUCCESS:
                rec.status = reaped.status
            if rec.remaining == 0:
                del inflight[reaped.cid]
                elapsed = self.clock.now_us - rec.start_us
                self._s_put_latency.record(elapsed)
                self._h_put_latency.record(elapsed)
                self._c_puts.add(1)
                if tracer is not None:
                    tracer.end_op(
                        rec.op_id, status=rec.status.name,
                        latency_us=elapsed, commands=rec.commands,
                    )
                results[rec.index] = OpResult(
                    latency_us=elapsed, commands=rec.commands, status=rec.status
                )

        def submit(cmd) -> None:
            while scheduler.outstanding >= qd:
                deliver_one()
            if tracer is not None:
                tracer.current_op = submit_op
            self.sq.submit(cmd)
            self.link.submit_command()
            cqe, finish_us = self.controller.process_next_deferred()
            scheduler.schedule(cqe, finish_us)

        # Validate every pair before submitting anything: a bad value must
        # raise (as the sequential path would) without leaving earlier
        # commands parked undelivered in the scheduler.
        pairs = list(pairs)
        plans = []
        for _, value in pairs:
            if not value:
                raise NVMeError("empty values are not supported by the KV interface")
            if len(value) > self.config.max_value_bytes:
                raise NVMeError(
                    f"value of {len(value)} bytes exceeds max_value_bytes "
                    f"{self.config.max_value_bytes}"
                )
            plans.append(self.planner.plan(len(value)))
        if self._fused_eligible() and all(
            plan.method is not TransferMethod.HYBRID and plan.dma_pages <= 512
            for plan in plans
        ):
            results.extend([None] * len(pairs))
            return self._fused_engine().put_batch(pairs, plans, qd, results)
        for index, (key, value) in enumerate(pairs):
            results.append(None)
            plan = plans[index]
            if tracer is not None:
                submit_op = tracer.begin_op(
                    "put", value_size=len(value), method=plan.method.value
                )
            rec = _InflightPut(
                index, self.clock.now_us, plan.command_count, op_id=submit_op
            )
            if plan.method is TransferMethod.PRP:
                buf = self.host_mem.stage_value(value)
                prp = build_prp(self.host_mem, buf)
                try:
                    cmd = build_store_command(self._cid(), key, len(value), prp)
                    inflight[cmd.cid] = rec
                    submit(cmd)  # processes the command; DMA is done after
                finally:
                    self._release_prp(buf, prp)
            elif plan.method is TransferMethod.PIGGYBACK:
                inline = value[: plan.inline_bytes]
                cmd = build_write_command(
                    self._cid(),
                    key,
                    len(value),
                    inline=inline,
                    final=not plan.trailing_fragments,
                )
                inflight[cmd.cid] = rec
                submit(cmd)
                self._submit_trailing(cmd.cid, value, plan.inline_bytes, plan, submit)
            else:  # hybrid: page-aligned head via PRP + piggybacked tail
                head = plan.dma_wire_bytes
                buf = self.host_mem.stage_value(value[:head])
                prp = build_prp(self.host_mem, buf)
                try:
                    cmd = build_write_command(
                        self._cid(),
                        key,
                        len(value),
                        prp=prp,
                        final=not plan.trailing_fragments,
                    )
                    inflight[cmd.cid] = rec
                    submit(cmd)
                finally:
                    self._release_prp(buf, prp)
                self._submit_trailing(cmd.cid, value, head, plan, submit)
        while scheduler.outstanding:
            deliver_one()
        assert all(result is not None for result in results)
        return results

    def _submit_trailing(
        self, cid: int, value: bytes, sent: int, plan: TransferPlan, submit
    ) -> None:
        """Queue the trailing transfer commands through ``submit``."""
        pos = sent
        last = len(plan.trailing_fragments) - 1
        for i, frag_size in enumerate(plan.trailing_fragments):
            fragment = value[pos : pos + frag_size]
            submit(build_transfer_command(cid, fragment, i == last))
            pos += frag_size
        if pos != len(value):
            raise NVMeError(f"plan sent {pos} of {len(value)} bytes")

    def _abort_active_put(self) -> None:
        """Release device-side state of a PUT attempt being abandoned."""
        if self._active_put_cid is not None:
            self.controller.abort_pending(self._active_put_cid)
            self._active_put_cid = None

    def _execute_put(self, key: bytes, value: bytes, plan: TransferPlan):
        if plan.method is TransferMethod.PRP:
            return self._put_prp(key, value, plan)
        if plan.method is TransferMethod.PIGGYBACK:
            return self._put_piggyback(key, value, plan)
        return self._put_hybrid(key, value, plan)

    def _put_prp(self, key: bytes, value: bytes, plan: TransferPlan):
        buf = self.host_mem.stage_value(value)
        prp = build_prp(self.host_mem, buf)
        try:
            cmd = build_store_command(self._cid(), key, len(value), prp)
            self._active_put_cid = cmd.cid
            return self._roundtrip(cmd)
        finally:
            self._release_prp(buf, prp)

    def _put_piggyback(self, key: bytes, value: bytes, plan: TransferPlan):
        inline = value[: plan.inline_bytes]
        cmd = build_write_command(
            self._cid(),
            key,
            len(value),
            inline=inline,
            final=not plan.trailing_fragments,
        )
        self._active_put_cid = cmd.cid
        cqe = self._roundtrip(cmd)
        if not cqe.ok or not plan.trailing_fragments:
            return cqe
        return self._send_trailing(cmd.cid, value, plan.inline_bytes, plan)

    def _put_hybrid(self, key: bytes, value: bytes, plan: TransferPlan):
        head = plan.dma_wire_bytes
        buf = self.host_mem.stage_value(value[:head])
        prp = build_prp(self.host_mem, buf)
        try:
            cmd = build_write_command(
                self._cid(),
                key,
                len(value),
                prp=prp,
                final=not plan.trailing_fragments,
            )
            self._active_put_cid = cmd.cid
            cqe = self._roundtrip(cmd)
        finally:
            self._release_prp(buf, prp)
        if not cqe.ok or not plan.trailing_fragments:
            return cqe
        return self._send_trailing(cmd.cid, value, head, plan)

    def _send_trailing(self, cid: int, value: bytes, sent: int, plan: TransferPlan):
        """Emit the trailing transfer commands, FIFO.

        Default regime: one synchronous round trip per command (the paper
        testbed's passthrough, §4.2). With ``batched_submission`` the
        fragments go out under one doorbell with a coalesced completion.
        """
        fragments = []
        pos = sent
        for i, frag_size in enumerate(plan.trailing_fragments):
            fragment = value[pos : pos + frag_size]
            final = i == len(plan.trailing_fragments) - 1
            fragments.append(build_transfer_command(cid, fragment, final))
            pos += frag_size
        if pos != len(value):
            raise NVMeError(f"plan sent {pos} of {len(value)} bytes")
        if self.config.batched_submission:
            return self._batched_trailing(fragments)
        cqe = None
        for cmd in fragments:
            cqe = self._roundtrip(cmd)
            if not cqe.ok:
                return cqe
        assert cqe is not None
        return cqe

    def _batched_trailing(self, commands) -> NVMeCompletion:
        """Submit trailing commands in SQ-sized batches, coalescing I/O."""
        cqe = None
        pos = 0
        while pos < len(commands):
            batch = commands[pos : pos + self.sq.depth]
            for cmd in batch:
                self.sq.submit(cmd)
            self.link.submit_commands(len(batch))
            for _ in batch:
                self.controller.process_next()
            self.link.complete_commands(len(batch))
            for cmd in batch:
                cqe = self.cq.reap()
                if cqe.cid != cmd.cid:
                    raise NVMeError(
                        f"completion cid {cqe.cid} does not match {cmd.cid}"
                    )
                if not cqe.ok:
                    return cqe
            pos += len(batch)
        assert cqe is not None
        return cqe

    def _release_prp(self, buf, prp: PRPDescriptor) -> None:
        self.host_mem.release(buf)
        if prp.list_page is not None:
            self.host_mem.free_page(prp.list_page)

    def bulk_put(self, pairs: list[tuple[bytes, bytes]]) -> OpResult:
        """Host-side-batched PUT of many pairs in one command (§1 comparator).

        One PRP payload, one round trip; the device unpacks and indexes each
        pair. Contrast with BandSlim's per-pair fine-grained transfer.
        """
        from repro.nvme.bulk import build_bulk_put_command, pack_bulk_payload

        payload = pack_bulk_payload(pairs)
        buf = self.host_mem.stage_value(payload)
        prp = build_prp(self.host_mem, buf)
        tracer = self._tracer
        op_id = 0
        if tracer is not None:
            op_id = tracer.begin_op(
                "bulk_put", pairs=len(pairs), payload_bytes=len(payload)
            )
        start = self.clock.now_us
        try:
            cmd = build_bulk_put_command(self._cid(), len(payload), len(pairs), prp)
            cqe = self._roundtrip(cmd)
        finally:
            self._release_prp(buf, prp)
        elapsed = self.clock.now_us - start
        self._s_put_latency.record(elapsed)
        self._h_put_latency.record(elapsed)
        self._c_puts.add(len(pairs))
        if tracer is not None:
            tracer.end_op(op_id, status=cqe.status.name, latency_us=elapsed)
        return OpResult(latency_us=elapsed, commands=1, status=cqe.status)

    # --- GET and friends -----------------------------------------------------------

    def get(self, key: bytes, max_size: int | None = None) -> OpResult:
        """Retrieve a value; raises KeyNotFoundError if absent."""
        size = max_size if max_size is not None else self.config.max_value_bytes
        result = self._get_one(key, size)
        if result.status is StatusCode.KEY_NOT_FOUND:
            raise KeyNotFoundError(f"key {key!r} not found")
        return result

    def _get_one(self, key: bytes, size: int) -> OpResult:
        """One synchronous GET; returns the result instead of raising on a
        missing key (batch semantics — :meth:`get` adds the raise)."""
        buf = self.host_mem.alloc_buffer(size)
        prp = build_prp(self.host_mem, buf)
        tracer = self._tracer
        op_id = 0
        if tracer is not None:
            op_id = tracer.begin_op("get", buffer_size=size)
        start = self.clock.now_us
        try:
            if self._injector is None and self.config.command_timeout_us == 0.0:
                cqe = self._roundtrip(build_retrieve_command(self._cid(), key, size, prp))
                if cqe.status.retryable:
                    cqe = self._with_recovery(
                        lambda: self._roundtrip(
                            build_retrieve_command(self._cid(), key, size, prp)
                        )
                    )
            else:
                cqe = self._with_recovery(
                    lambda: self._roundtrip(
                        build_retrieve_command(self._cid(), key, size, prp)
                    )
                )
            elapsed = self.clock.now_us - start
            if cqe.status is StatusCode.KEY_NOT_FOUND:
                if tracer is not None:
                    tracer.end_op(op_id, status=cqe.status.name, latency_us=elapsed)
                # Not-found GETs record no latency metrics (they never did).
                return OpResult(
                    latency_us=elapsed, commands=1, status=cqe.status
                )
            value = buf.tobytes()[: cqe.result] if cqe.ok else None
        finally:
            self._release_prp(buf, prp)
        self._s_get_latency.record(elapsed)
        self._h_get_latency.record(elapsed)
        self._c_gets.add(1)
        if tracer is not None:
            tracer.end_op(op_id, status=cqe.status.name, latency_us=elapsed)
        return OpResult(latency_us=elapsed, commands=1, status=cqe.status, value=value)

    # --- pipelined GET / EXIST (queue depth > 1) ------------------------------

    def get_many(
        self,
        keys,
        max_size: int | None = None,
        queue_depth: int | None = None,
    ) -> list[OpResult]:
        """Retrieve many keys with up to ``queue_depth`` GETs in flight.

        The read-side twin of :meth:`put_many`: commands are processed
        serially (one firmware core) but their NAND reads only book busy
        intervals on the channel/way timeline — completions are reaped in
        NAND-finish order, so index probes and value reads of different
        in-flight GETs overlap across ways, and in-flight reads of the same
        physical page share a single sense/transfer booking (the packed
        layouts' read payoff; see docs/parallel-timing.md).

        Unlike :meth:`get`, a missing key does not raise: its slot carries
        ``status == KEY_NOT_FOUND`` and ``value is None``, so one absent
        key cannot abort a batch. ``queue_depth`` defaults to
        ``config.queue_depth``; at 1 (or with a fault injector attached,
        whose per-op retry protocol is inherently synchronous) this falls
        back to the sequential GET loop.
        """
        qd = self.config.queue_depth if queue_depth is None else queue_depth
        if qd < 1:
            raise NVMeError(f"queue depth must be >= 1, got {qd}")
        size = max_size if max_size is not None else self.config.max_value_bytes
        keys = list(keys)
        if qd == 1 or self._injector is not None:
            return [self._get_one(key, size) for key in keys]
        if self._fused_eligible() and 0 < size <= 512 * MEM_PAGE_SIZE:
            return self._fused_engine().get_batch(keys, size, qd)

        results: list[OpResult | None] = [None] * len(keys)
        inflight: dict[int, _InflightGet] = {}
        scheduler = CompletionScheduler()
        tracer = self._tracer

        def deliver_one() -> None:
            cqe, finish_us = scheduler.pop_earliest()
            rec = inflight.pop(cqe.cid)
            if tracer is None:
                self.clock.advance_to(finish_us)
            else:
                # Attribute the wait for this command's NAND finish (and
                # the completion that follows) to the op it belongs to.
                tracer.current_op = rec.op_id
                t0 = self.clock.now_us
                self.clock.advance_to(finish_us)
                if self.clock.now_us > t0:
                    tracer.span(
                        "driver", "nand_wait", t0, self.clock.now_us,
                        phase="nand", cid=cqe.cid,
                    )
            self.cq.post(cqe)
            self.link.complete_command()
            reaped = self.cq.reap()
            elapsed = self.clock.now_us - rec.start_us
            value = None
            if reaped.ok:
                value = rec.buf.tobytes()[: reaped.result]
            self._release_prp(rec.buf, rec.prp)
            if reaped.status is not StatusCode.KEY_NOT_FOUND:
                self._s_get_latency.record(elapsed)
                self._h_get_latency.record(elapsed)
                self._c_gets.add(1)
            if tracer is not None:
                tracer.end_op(
                    rec.op_id, status=reaped.status.name, latency_us=elapsed
                )
            results[rec.index] = OpResult(
                latency_us=elapsed, commands=1, status=reaped.status, value=value
            )

        self.controller.begin_read_batch()
        try:
            for index, key in enumerate(keys):
                while scheduler.outstanding >= qd:
                    deliver_one()
                op_id = 0
                if tracer is not None:
                    op_id = tracer.begin_op("get", buffer_size=size)
                    tracer.current_op = op_id
                buf = self.host_mem.alloc_buffer(size)
                prp = build_prp(self.host_mem, buf)
                cmd = build_retrieve_command(self._cid(), key, size, prp)
                inflight[cmd.cid] = _InflightGet(
                    index, self.clock.now_us, op_id, buf, prp
                )
                self.sq.submit(cmd)
                self.link.submit_command()
                cqe, finish_us = self.controller.process_next_deferred()
                scheduler.schedule(cqe, finish_us)
            while scheduler.outstanding:
                deliver_one()
        finally:
            self.controller.end_read_batch()
        assert all(result is not None for result in results)
        return results

    def exists_many(self, keys, queue_depth: int | None = None) -> list[bool]:
        """KV_EXIST probes with up to ``queue_depth`` commands in flight.

        Index probes of in-flight commands overlap (and coalesce on shared
        SSTable pages) exactly as in :meth:`get_many`; no value moves.
        """
        qd = self.config.queue_depth if queue_depth is None else queue_depth
        if qd < 1:
            raise NVMeError(f"queue depth must be >= 1, got {qd}")
        keys = list(keys)
        if qd == 1 or self._injector is not None:
            return [self.exists(key) for key in keys]

        results: list[bool] = [False] * len(keys)
        index_of: dict[int, int] = {}
        scheduler = CompletionScheduler()

        def deliver_one() -> None:
            cqe, finish_us = scheduler.pop_earliest()
            self.clock.advance_to(finish_us)
            self.cq.post(cqe)
            self.link.complete_command()
            reaped = self.cq.reap()
            results[index_of.pop(reaped.cid)] = reaped.ok

        self.controller.begin_read_batch()
        try:
            for index, key in enumerate(keys):
                while scheduler.outstanding >= qd:
                    deliver_one()
                cmd = build_exist_command(self._cid(), key)
                index_of[cmd.cid] = index
                self.sq.submit(cmd)
                self.link.submit_command()
                cqe, finish_us = self.controller.process_next_deferred()
                scheduler.schedule(cqe, finish_us)
            while scheduler.outstanding:
                deliver_one()
        finally:
            self.controller.end_read_batch()
        return results

    def delete(self, key: bytes) -> OpResult:
        """Delete a pair; raises KeyNotFoundError if absent."""
        tracer = self._tracer
        op_id = 0
        if tracer is not None:
            op_id = tracer.begin_op("delete")
        start = self.clock.now_us
        cqe = self._with_recovery(
            lambda: self._roundtrip(build_delete_command(self._cid(), key))
        )
        elapsed = self.clock.now_us - start
        if tracer is not None:
            tracer.end_op(op_id, status=cqe.status.name, latency_us=elapsed)
        if cqe.status is StatusCode.KEY_NOT_FOUND:
            raise KeyNotFoundError(f"key {key!r} not found")
        return OpResult(latency_us=elapsed, commands=1, status=cqe.status)

    def exists(self, key: bytes) -> bool:
        """KV_EXIST probe without transferring the value."""
        cqe = self._roundtrip(build_exist_command(self._cid(), key))
        return cqe.ok

    def list_keys(self, start_key: bytes, max_keys: int = 64) -> list[bytes]:
        """Keys >= start_key in order (backs the SEEK/NEXT iterator)."""
        buf = self.host_mem.alloc_buffer(MEM_PAGE_SIZE)
        prp = build_prp(self.host_mem, buf)
        try:
            cmd = build_list_command(self._cid(), start_key or b"\x00", max_keys, prp)
            cqe = self._roundtrip(cmd)
            if not cqe.ok:
                return []
            raw = buf.tobytes()
        finally:
            self._release_prp(buf, prp)
        count = int.from_bytes(raw[0:4], "little")
        keys = []
        pos = 4
        for _ in range(count):
            klen = raw[pos]
            pos += 1
            keys.append(raw[pos : pos + klen])
            pos += klen
        return keys

    # --- device-side iterators (the [22] SEEK/NEXT interface) ---------------------

    def iter_open(self, start_key: bytes) -> int:
        """SEEK on the device; returns the iterator id."""
        from repro.nvme.iterator import build_iter_open_command

        cqe = self._roundtrip(build_iter_open_command(self._cid(), start_key))
        if not cqe.ok:
            raise NVMeError(f"ITER_OPEN failed: {cqe.status.name}")
        return cqe.result

    def iter_next(
        self, iterator_id: int, batch_bytes: int = MEM_PAGE_SIZE
    ) -> tuple[list[tuple[bytes, bytes]], bool]:
        """NEXT on the device: (pairs, exhausted)."""
        from repro.nvme.iterator import (
            ITER_EXHAUSTED_FLAG,
            build_iter_next_command,
            unpack_batch,
        )

        buf = self.host_mem.alloc_buffer(batch_bytes)
        prp = build_prp(self.host_mem, buf)
        try:
            cqe = self._roundtrip(
                build_iter_next_command(self._cid(), iterator_id, batch_bytes, prp)
            )
            if not cqe.ok:
                raise NVMeError(f"ITER_NEXT failed: {cqe.status.name}")
            pairs = unpack_batch(buf.tobytes())
        finally:
            self._release_prp(buf, prp)
        exhausted = bool(cqe.result & ITER_EXHAUSTED_FLAG)
        return pairs, exhausted

    def iter_close(self, iterator_id: int) -> None:
        """Release a device-side iterator cursor."""
        from repro.nvme.iterator import build_iter_close_command

        cqe = self._roundtrip(build_iter_close_command(self._cid(), iterator_id))
        if not cqe.ok:
            raise NVMeError(f"ITER_CLOSE failed: {cqe.status.name}")

    # --- admin path --------------------------------------------------------------

    def _adopt_config(self, new_config: BandSlimConfig) -> None:
        self.config = new_config
        self.planner.config = new_config

    def _admin_roundtrip(self, cmd) -> NVMeCompletion:
        sq, cq = self.controller.admin_sq, self.controller.admin_cq
        if sq is None or cq is None:
            raise NVMeError("device has no admin queues attached")
        sq.submit(cmd)
        self.link.submit_command()
        self.controller.process_next_admin()
        self.link.complete_command()
        cqe = cq.reap()
        if cqe.cid != cmd.cid:
            raise NVMeError(
                f"admin completion cid {cqe.cid} does not match {cmd.cid}"
            )
        return cqe

    def identify(self) -> tuple[dict[str, str], BandSlimCapabilities]:
        """IDENTIFY controller: (standard fields, BandSlim capabilities)."""
        buf = self.host_mem.alloc_buffer(IDENTIFY_DATA_SIZE)
        prp = build_prp(self.host_mem, buf)
        try:
            cqe = self._admin_roundtrip(
                build_identify_command(self._cid(), prp.prp1, prp.prp2)
            )
            if not cqe.ok:
                raise NVMeError(f"IDENTIFY failed with status {cqe.status.name}")
            raw = buf.tobytes()
        finally:
            self._release_prp(buf, prp)
        return identify_vendor_fields(raw), parse_identify_data(raw)

    def read_stats_log(self) -> dict[str, int]:
        """GET LOG PAGE (vendor 0xC0): device statistics over NVMe."""
        buf = self.host_mem.alloc_buffer(STATS_LOG_SIZE)
        prp = build_prp(self.host_mem, buf)
        try:
            cqe = self._admin_roundtrip(
                build_get_log_page_command(self._cid(), prp.prp1, prp.prp2)
            )
            if not cqe.ok:
                raise NVMeError(f"GET LOG PAGE failed: {cqe.status.name}")
            raw = buf.tobytes()
        finally:
            self._release_prp(buf, prp)
        return parse_stats_log(raw)

    def get_feature(self, fid: FeatureId) -> int:
        """GET FEATURES: read one vendor feature's current value."""
        cqe = self._admin_roundtrip(
            build_get_features_command(self._cid(), fid)
        )
        if not cqe.ok:
            raise NVMeError(f"GET FEATURES failed: {cqe.status.name}")
        return cqe.result

    def set_feature(self, fid: FeatureId, value: int) -> int:
        """SET FEATURES: reconfigure the adaptive thresholds at runtime."""
        cqe = self._admin_roundtrip(
            build_set_features_command(self._cid(), fid, value)
        )
        if not cqe.ok:
            raise NVMeError(f"SET FEATURES failed: {cqe.status.name}")
        return cqe.result

    # --- lifecycle -----------------------------------------------------------------

    def flush(self) -> None:
        """Drain device buffers (end of run / clean shutdown)."""
        self.controller.flush_all()

    def nvme_flush(self) -> OpResult:
        """NVMe FLUSH round trip: a durability barrier over the wire.

        Unlike :meth:`flush` (a simulator convenience that pokes the
        controller directly), this submits a real FLUSH command; when the
        completion is reaped, every previously acked write is durable —
        in crash-consistency mode the device has drained its buffers *and*
        checkpointed its manifest, so a power cut afterwards loses nothing
        acked before the flush.
        """
        tracer = self._tracer
        op_id = 0
        if tracer is not None:
            op_id = tracer.begin_op("flush")
        start = self.clock.now_us
        cqe = self._roundtrip(build_flush_command(self._cid()))
        elapsed = self.clock.now_us - start
        if tracer is not None:
            tracer.end_op(op_id, status=cqe.status.name, latency_us=elapsed)
        return OpResult(latency_us=elapsed, commands=1, status=cqe.status)
