"""Threshold calibration: the exploratory benchmark of §3.2.

BandSlim's adaptive transfer is configured from "exploratory runs conducted
using synthetic benchmarks" sweeping value sizes and comparing transfer
times per method. This module is that benchmark: it measures piggyback /
PRP / hybrid response curves on a NAND-disabled device (isolating transfer
cost, as §4.2 does) and derives

* ``threshold1`` — the largest value size at which piggybacking still beats
  PRP-based transfer, and
* ``threshold2`` — the largest sub-page tail at which the hybrid transfer
  still beats pure PRP (0 if it never does, the paper's Fig 9(b) outcome).

Users scale the derived thresholds with α/β to trade response time for
traffic (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BandSlimConfig, PackingPolicyKind, TransferMode
from repro.device.kvssd import KVSSD
from repro.errors import ConfigError
from repro.sim.latency import LatencyModel
from repro.units import KIB, MEM_PAGE_SIZE

#: §3.2: "value sizes ranging from 4 bytes to 8 KB are tested".
DEFAULT_SIZES: tuple[int, ...] = (
    4, 8, 16, 32, 48, 64, 91, 128, 192, 256, 384, 512,
    768, 1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB,
)

DEFAULT_TAILS: tuple[int, ...] = (4, 8, 16, 32, 56, 64, 112, 128, 256, 512, 1 * KIB)


@dataclass
class CalibrationResult:
    """Derived thresholds plus the measured curves behind them."""

    threshold1: int
    threshold2: int
    #: method name -> [(value_size, mean_response_us)], sorted by size.
    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def apply(self, config: BandSlimConfig) -> BandSlimConfig:
        """A copy of ``config`` with the calibrated thresholds installed."""
        return config.with_overrides(
            threshold1=self.threshold1, threshold2=self.threshold2
        )


class ThresholdCalibrator:
    """Runs the exploratory sweeps and derives the two thresholds."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        ops_per_point: int = 200,
        sizes: tuple[int, ...] = DEFAULT_SIZES,
        tails: tuple[int, ...] = DEFAULT_TAILS,
    ) -> None:
        if ops_per_point < 1:
            raise ConfigError("ops_per_point must be >= 1")
        self.latency = latency or LatencyModel()
        self.ops_per_point = ops_per_point
        self.sizes = tuple(sorted(set(sizes)))
        self.tails = tuple(sorted(set(tails)))

    def _mean_put_latency(self, mode: TransferMode, value_size: int) -> float:
        """Mean PUT response for one (mode, size) point on a fresh device."""
        config = BandSlimConfig(
            transfer_mode=mode,
            packing=PackingPolicyKind.BLOCK,
            nand_io_enabled=False,
        )
        device = KVSSD.build(config=config, latency=self.latency)
        value = bytes(value_size)
        for i in range(self.ops_per_point):
            key = i.to_bytes(4, "little")
            device.driver.put(key, value)
        stat = device.driver.metrics.stat("put_latency_us")
        return stat.mean

    def calibrate(self) -> CalibrationResult:
        """Run both sweeps and derive (threshold1, threshold2)."""
        curves: dict[str, list[tuple[int, float]]] = {
            "piggyback": [],
            "prp": [],
            "hybrid": [],
        }
        threshold1 = 0
        for size in self.sizes:
            piggy = self._mean_put_latency(TransferMode.PIGGYBACK, size)
            prp = self._mean_put_latency(TransferMode.BASELINE, size)
            curves["piggyback"].append((size, piggy))
            curves["prp"].append((size, prp))
            if piggy <= prp:
                threshold1 = size

        threshold2 = 0
        for tail in self.tails:
            size = MEM_PAGE_SIZE + tail
            hybrid = self._mean_put_latency(TransferMode.HYBRID, size)
            prp = self._mean_put_latency(TransferMode.BASELINE, size)
            curves["hybrid"].append((size, hybrid))
            if hybrid <= prp:
                threshold2 = tail

        return CalibrationResult(
            threshold1=threshold1, threshold2=threshold2, curves=curves
        )
