"""BandSlim reproduction: a bandwidth- and space-efficient KV-SSD simulator.

Reproduces Park et al., "BandSlim: A Novel Bandwidth and Space-Efficient
KV-SSD with an Escape-from-Block Approach" (ICPP 2024) as a behavioral
simulator of the full host↔device stack.

Public entry points:

* :class:`repro.host.KVStore` — the user-level KV API (PUT/GET/SEEK/NEXT);
* :class:`repro.device.KVSSD` — the fully wired simulated device;
* :func:`repro.core.preset` — the paper's named evaluation configurations;
* :mod:`repro.workloads` — db_bench-style workload generators (A–D, M);
* :mod:`repro.sim.runner` — the experiment runner behind every figure.
"""

from repro.core.config import BandSlimConfig, PackingPolicyKind, TransferMode, preset
from repro.device.kvssd import KVSSD
from repro.errors import KeyNotFoundError, ReproError
from repro.host.api import KVIterator, KVStore
from repro.sim.latency import LatencyModel

__version__ = "1.0.0"

__all__ = [
    "BandSlimConfig",
    "TransferMode",
    "PackingPolicyKind",
    "preset",
    "KVSSD",
    "KVStore",
    "KVIterator",
    "LatencyModel",
    "ReproError",
    "KeyNotFoundError",
    "__version__",
]
