"""Exception hierarchy for the BandSlim reproduction.

Every layer raises a subclass of :class:`ReproError`, so callers can catch
the whole stack's failures with one ``except`` while tests assert on the
precise class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class NVMeError(ReproError):
    """Protocol-level failure (bad opcode, malformed command, queue abuse)."""


class QueueFullError(NVMeError):
    """Submission or completion queue has no free slot."""


class CommandFieldError(NVMeError):
    """A value does not fit in the command field it was assigned to."""


class DMAAlignmentError(ReproError):
    """DMA request violates the engine's page-alignment restriction (§2.5)."""


class HostMemoryError(ReproError):
    """Host page allocator exhausted or freed an unknown page."""


class DeviceMemoryError(ReproError):
    """Device DRAM region overflow or out-of-range access."""


class NandError(ReproError):
    """NAND flash geometry violation or illegal operation ordering."""


class ProgramError(NandError):
    """Programming a page that is not erased (NAND pages write once)."""


class FTLError(ReproError):
    """Flash translation layer mapping failure (no free pages, bad LPN)."""


class LSMError(ReproError):
    """LSM-tree invariant violation."""


class KeyNotFoundError(LSMError):
    """GET/DELETE on a key the store does not contain."""


class VLogError(LSMError):
    """Value-log addressing failure (bad address, torn read)."""


class PackingError(ReproError):
    """NAND page buffer packing policy invariant violation."""


class WorkloadError(ReproError):
    """Workload specification cannot be generated."""
