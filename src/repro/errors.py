"""Exception hierarchy for the BandSlim reproduction.

Every layer raises a subclass of :class:`ReproError`, so callers can catch
the whole stack's failures with one ``except`` while tests assert on the
precise class.

Hierarchy (indentation = inheritance)::

    ReproError
    ├── ConfigError            configuration inconsistency
    ├── NVMeError              protocol-level failure
    │   ├── QueueFullError     SQ/CQ has no free slot
    │   ├── CommandFieldError  value does not fit its command field
    │   └── CommandTimeoutError  driver-side per-command timeout expired
    ├── DMAAlignmentError      page-alignment restriction violated (§2.5)
    ├── TransferFaultError     transient PCIe payload-transfer fault
    ├── HostMemoryError        host page allocator failure
    ├── DeviceMemoryError      device DRAM region failure
    ├── NandError              NAND geometry violation / illegal ordering
    │   ├── ProgramError       programming a non-erased page (usage bug)
    │   └── MediaError         *media-level* failure (injected or wear)
    │       ├── ProgramFailedError       NAND program op failed
    │       ├── EraseFailedError         NAND block erase op failed
    │       └── ReadUncorrectableError   bit flips exceeded ECC + read-retry
    ├── FTLError               mapping failure (no free pages, bad LPN)
    │   └── BadBlockError      bad-block spare pool exhausted / recovery dead-end
    ├── LSMError               LSM-tree invariant violation
    │   ├── KeyNotFoundError   GET/DELETE on an absent key
    │   └── VLogError          value-log addressing failure
    ├── PackingError           page-buffer packing invariant violation
    ├── PowerLossError         simulated power cut froze the device
    ├── ArrayError             multi-device array routing/rebuild failure
    │   └── QuorumError        write acked by fewer replicas than the quorum
    └── WorkloadError          workload specification cannot be generated

The *usage* errors (:class:`ProgramError`, :class:`FTLError`, ...) mean the
simulator was driven incorrectly and always escape loudly. The *media*
errors (:class:`MediaError` subtree, :class:`TransferFaultError`) model
device faults injected by :mod:`repro.faults`; the controller converts them
into NVMe completion statuses instead of letting them escape to the host.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class NVMeError(ReproError):
    """Protocol-level failure (bad opcode, malformed command, queue abuse)."""


class QueueFullError(NVMeError):
    """Submission or completion queue has no free slot."""


class CommandFieldError(NVMeError):
    """A value does not fit in the command field it was assigned to."""


class CommandTimeoutError(NVMeError):
    """A command's simulated round trip exceeded the driver's timeout."""


class DMAAlignmentError(ReproError):
    """DMA request violates the engine's page-alignment restriction (§2.5)."""


class TransferFaultError(ReproError):
    """Transient PCIe payload-transfer fault (CRC/replay-style, retryable)."""


class HostMemoryError(ReproError):
    """Host page allocator exhausted or freed an unknown page."""


class DeviceMemoryError(ReproError):
    """Device DRAM region overflow or out-of-range access."""


class NandError(ReproError):
    """NAND flash geometry violation or illegal operation ordering."""


class ProgramError(NandError):
    """Programming a page that is not erased (NAND pages write once)."""


class MediaError(NandError):
    """A NAND operation failed at the media level (injected or wear)."""


class ProgramFailedError(MediaError):
    """A NAND page program operation failed.

    ``permanent`` distinguishes a grown-bad-block failure (the block must
    be retired) from a transient one (retry on the next free page).
    """

    def __init__(
        self, message: str, *, ppn: int = -1, block: int = -1, permanent: bool = False
    ) -> None:
        super().__init__(message)
        self.ppn = ppn
        self.block = block
        self.permanent = permanent


class EraseFailedError(MediaError):
    """A NAND block erase operation failed; the block must be retired."""

    def __init__(self, message: str, *, block: int = -1) -> None:
        super().__init__(message)
        self.block = block


class ReadUncorrectableError(MediaError):
    """Bit flips in a page read exceeded ECC strength even after read-retry."""

    def __init__(self, message: str, *, ppn: int = -1, bitflips: int = 0) -> None:
        super().__init__(message)
        self.ppn = ppn
        self.bitflips = bitflips


class FTLError(ReproError):
    """Flash translation layer mapping failure (no free pages, bad LPN)."""


class BadBlockError(FTLError):
    """Bad-block recovery dead-end (spare pool exhausted, retries spent)."""


class LSMError(ReproError):
    """LSM-tree invariant violation."""


class KeyNotFoundError(LSMError):
    """GET/DELETE on a key the store does not contain."""


class VLogError(LSMError):
    """Value-log addressing failure (bad address, torn read)."""


class PackingError(ReproError):
    """NAND page buffer packing policy invariant violation."""


class PowerLossError(ReproError):
    """A simulated power cut froze the device mid-operation.

    Unlike the :class:`MediaError` subtree this is *not* converted into an
    NVMe completion status — power loss takes the whole device down, so the
    error escapes raw to the harness, which is expected to call
    :meth:`repro.device.kvssd.KVSSD.remount` to bring the module back.
    ``cut_us`` is the simulated timestamp at which power disappeared.
    """

    def __init__(self, message: str, *, cut_us: float = -1.0) -> None:
        super().__init__(message)
        self.cut_us = cut_us


class ArrayError(ReproError):
    """Multi-device array failure (no replica available, bad rebuild call)."""


class QuorumError(ArrayError):
    """A replicated write was acknowledged by fewer replicas than the
    configured ``write_quorum``.

    The write may still exist on some replicas (a later read-repair or
    scrub can spread it); callers must treat the operation as *not acked*.
    """


class WorkloadError(ReproError):
    """Workload specification cannot be generated."""
