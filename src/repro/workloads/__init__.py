"""db_bench-style workload generation (paper §4.1)."""

from repro.workloads.distributions import (
    FixedSize,
    MixGraphSizes,
    TwoPointSizes,
    UniformChoiceSizes,
    ValueSizeDistribution,
)
from repro.workloads.generator import KeySequence, Request, RequestKind, Workload
from repro.workloads.trace import Trace
from repro.workloads.workloads import (
    workload_a,
    workload_b,
    workload_c,
    workload_d,
    workload_m,
    workload_mixed,
    PAPER_WORKLOADS,
)

__all__ = [
    "ValueSizeDistribution",
    "FixedSize",
    "TwoPointSizes",
    "UniformChoiceSizes",
    "MixGraphSizes",
    "KeySequence",
    "Request",
    "RequestKind",
    "Workload",
    "Trace",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_d",
    "workload_m",
    "workload_mixed",
    "PAPER_WORKLOADS",
]
