"""The paper's five evaluation workloads (§4.1).

* **A** — db_bench *fillseq*: sequential keys, one fixed value size.
* **B** — 1 M random pairs, value 8 B or 2 KiB at 9:1 (small-dominant).
* **C** — same sizes at 1:9 (large-dominant).
* **D** — sizes {8 B … 2 KiB} in equal ratio, random order.
* **M** — db_bench *mixgraph* All_random: ≤1 KiB values, ~70 % under 35 B.

The paper issues 1 M PUTs per run (10 M for Fig 11); ``num_ops`` scales
runs down while keeping the distributions identical — byte-count metrics
are exactly linear in op count and latency means are distribution-stable.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.units import KIB
from repro.workloads.distributions import (
    FixedSize,
    MixGraphSizes,
    TwoPointSizes,
    UniformChoiceSizes,
)
from repro.workloads.generator import Workload

#: Workload D's size set: "(8, 16, 32, 64, 128, 256, 512 bytes, 1 KB, and
#: 2 KB) ... with each size having an equal ratio".
WORKLOAD_D_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1 * KIB, 2 * KIB)


def workload_a(num_ops: int, value_size: int, seed: int = 0) -> Workload:
    """fillseq with a fixed value size (the Figs 3/4/8/9/11 sweep driver)."""
    if value_size < 1:
        raise WorkloadError(f"value_size must be >= 1, got {value_size}")
    return Workload(
        name=f"A(fillseq,{value_size}B)",
        num_ops=num_ops,
        size_dist=FixedSize(value_size),
        seed=seed,
        sequential_keys=True,
    )


def workload_b(num_ops: int, seed: int = 0) -> Workload:
    """Small-dominant: 8 B vs 2 KiB at 9:1, random unique keys."""
    return Workload(
        name="B(8B:2K=9:1)",
        num_ops=num_ops,
        size_dist=TwoPointSizes(small=8, large=2 * KIB, small_fraction=0.9),
        seed=seed,
    )


def workload_c(num_ops: int, seed: int = 0) -> Workload:
    """Large-dominant: 8 B vs 2 KiB at 1:9."""
    return Workload(
        name="C(8B:2K=1:9)",
        num_ops=num_ops,
        size_dist=TwoPointSizes(small=8, large=2 * KIB, small_fraction=0.1),
        seed=seed,
    )


def workload_d(num_ops: int, seed: int = 0) -> Workload:
    """Balanced mix of 8 B … 2 KiB, equal ratio, random order."""
    return Workload(
        name="D(uniform 8B..2K)",
        num_ops=num_ops,
        size_dist=UniformChoiceSizes(WORKLOAD_D_SIZES),
        seed=seed,
    )


def workload_m(num_ops: int, seed: int = 0) -> Workload:
    """mixgraph All_random: real-world-shaped small values (§4.1)."""
    return Workload(
        name="M(mixgraph)",
        num_ops=num_ops,
        size_dist=MixGraphSizes(),
        seed=seed,
    )


def workload_mixed(
    num_ops: int,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> Workload:
    """Mixed GET/PUT stream over mixgraph-sized values (extension).

    The paper's evaluation is write-only; this workload exercises the full
    read path (LSM probes, vLog/buffer reads, device→host DMA) at scale.
    Run with NAND I/O enabled — GETs must be able to read flushed pages.
    """
    return Workload(
        name=f"MIXED(r={read_fraction:.0%})",
        num_ops=num_ops,
        size_dist=MixGraphSizes(),
        seed=seed,
        read_fraction=read_fraction,
    )


#: name -> factory(num_ops, seed), the Fig 10/12 workload matrix.
PAPER_WORKLOADS: dict[str, Callable[..., Workload]] = {
    "W(B)": workload_b,
    "W(C)": workload_c,
    "W(D)": workload_d,
    "W(M)": workload_m,
}
