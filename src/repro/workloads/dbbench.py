"""A db_bench-flavored frontend (paper §4.1 uses a modified db_bench).

Maps db_bench benchmark names onto this package's workload factories and
runs them against a simulated device, printing a db_bench-style report.
Used by the examples; benches use :mod:`repro.sim.runner` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BandSlimConfig
from repro.errors import WorkloadError
from repro.sim.latency import LatencyModel
from repro.sim.runner import RunResult, run_workload
from repro.units import fmt_bytes
from repro.workloads.distributions import FixedSize
from repro.workloads.generator import Workload
from repro.workloads.workloads import workload_a, workload_m


def _fillrandom(n: int, value_size: int, seed: int) -> Workload:
    return Workload(
        name=f"fillrandom({value_size}B)",
        num_ops=n,
        size_dist=FixedSize(value_size),
        seed=seed,
        sequential_keys=False,
    )


#: db_bench benchmark name -> factory(num_ops, value_size, seed).
_BENCHMARKS = {
    "fillseq": lambda n, value_size, seed: workload_a(n, value_size, seed),
    "fillrandom": _fillrandom,
    "mixgraph": lambda n, value_size, seed: workload_m(n, seed),
}


@dataclass(frozen=True)
class DBBenchReport:
    """db_bench-style summary line data."""

    benchmark: str
    result: RunResult

    def format(self) -> str:
        r = self.result
        micros_per_op = r.elapsed_us / r.ops
        return (
            f"{self.benchmark:<12} : {micros_per_op:10.3f} micros/op "
            f"{r.throughput_kops * 1000:10.0f} ops/sec; "
            f"pcie {fmt_bytes(r.pcie_total_bytes)}; "
            f"nand writes {r.nand_page_writes}"
        )


def available_benchmarks() -> list[str]:
    return sorted(_BENCHMARKS)


def run_dbbench(
    benchmark: str,
    num_ops: int = 10_000,
    value_size: int = 100,
    seed: int = 0,
    config: BandSlimConfig | str = "adaptive",
    latency: LatencyModel | None = None,
    tracer=None,
) -> DBBenchReport:
    """Run one named db_bench benchmark and return its report."""
    try:
        factory = _BENCHMARKS[benchmark]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {benchmark!r}; available: {available_benchmarks()}"
        ) from None
    workload = factory(num_ops, value_size, seed)
    result = run_workload(config, workload, latency=latency, tracer=tracer)
    return DBBenchReport(benchmark=benchmark, result=result)
