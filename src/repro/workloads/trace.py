"""Workload trace record and replay.

Research workflows want the *exact* request stream preserved — to compare
configurations on identical inputs, to ship a failing sequence as a repro,
or to re-run a generated workload long after the generator changed. A
:class:`Trace` materializes any request stream and round-trips it through a
compressed ``.npz`` file (keys, ops and payloads stored as concatenated
byte arrays with offset indexes).

A Trace quacks like a :class:`~repro.workloads.generator.Workload`, so
``run_workload(config, Trace.load(path))`` just works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.generator import Request, RequestKind

_KIND_CODES = {kind: i for i, kind in enumerate(RequestKind)}
_KIND_FROM_CODE = {i: kind for kind, i in _KIND_CODES.items()}

#: Format version written into every trace file.
TRACE_VERSION = 1


@dataclass
class Trace:
    """A materialized, serializable request stream."""

    name: str
    _requests: list[Request]

    def __post_init__(self) -> None:
        if not self._requests:
            raise WorkloadError("a trace must contain at least one request")

    # --- construction -------------------------------------------------------

    @classmethod
    def from_requests(cls, name: str, requests: Iterable[Request]) -> "Trace":
        return cls(name=name, _requests=list(requests))

    @classmethod
    def record(cls, workload) -> "Trace":
        """Materialize a workload's stream (generator state frozen now)."""
        return cls.from_requests(workload.name, workload.requests())

    # --- workload protocol ---------------------------------------------------

    @property
    def num_ops(self) -> int:
        return len(self._requests)

    @property
    def total_value_bytes(self) -> int:
        return sum(r.value_size for r in self._requests)

    @property
    def max_value_bytes(self) -> int:
        return max((r.value_size for r in self._requests), default=1) or 1

    def requests(self) -> Iterator[Request]:
        return iter(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return self.requests()

    def __len__(self) -> int:
        return len(self._requests)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Trace)
            and self.name == other.name
            and self._requests == other._requests
        )

    # --- serialization ----------------------------------------------------------

    def save(self, path: str) -> None:
        """Write a compressed trace file."""
        kinds = np.array([_KIND_CODES[r.kind] for r in self._requests],
                         dtype=np.uint8)
        key_blob = b"".join(r.key for r in self._requests)
        key_lens = np.array([len(r.key) for r in self._requests], dtype=np.uint16)
        value_blob = b"".join(r.value or b"" for r in self._requests)
        value_lens = np.array([r.value_size for r in self._requests],
                              dtype=np.uint32)
        np.savez_compressed(
            path,
            version=np.array([TRACE_VERSION], dtype=np.uint32),
            name=np.frombuffer(self.name.encode("utf-8"), dtype=np.uint8),
            kinds=kinds,
            key_blob=np.frombuffer(key_blob, dtype=np.uint8),
            key_lens=key_lens,
            value_blob=np.frombuffer(value_blob, dtype=np.uint8),
            value_lens=value_lens,
        )

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace file back into a replayable stream."""
        with np.load(path) as data:
            version = int(data["version"][0])
            if version != TRACE_VERSION:
                raise WorkloadError(
                    f"trace version {version} unsupported (expected {TRACE_VERSION})"
                )
            name = bytes(data["name"].tobytes()).decode("utf-8")
            kinds = data["kinds"]
            key_blob = data["key_blob"].tobytes()
            key_lens = data["key_lens"]
            value_blob = data["value_blob"].tobytes()
            value_lens = data["value_lens"]
        requests: list[Request] = []
        key_pos = 0
        value_pos = 0
        for code, key_len, value_len in zip(kinds, key_lens, value_lens):
            kind = _KIND_FROM_CODE[int(code)]
            key = key_blob[key_pos : key_pos + int(key_len)]
            key_pos += int(key_len)
            value = None
            if kind is RequestKind.PUT:
                value = value_blob[value_pos : value_pos + int(value_len)]
            value_pos += int(value_len)
            requests.append(Request(kind, key, value))
        return cls(name=name, _requests=requests)
