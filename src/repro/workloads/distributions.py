"""Value-size distributions for the paper's workloads (§4.1).

Sampling is vectorized: a distribution produces the whole size array for a
run in one NumPy call, which keeps million-op workload generation far off
the profile (per the HPC guidance: vectorize the hot loop, don't iterate).

``MixGraphSizes`` reproduces db_bench's *mixgraph* value-size model — a
Generalized Pareto Distribution with the parameters Cao et al. (FAST '20)
fitted to Meta's production traces (σ ≈ 25.45, ξ ≈ 0.2615, θ = 0). With
the paper's 1 KiB cap, ~70 % of sampled values are under 35 bytes — the
property §2.5 leans on for piggybacking.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


class ValueSizeDistribution(ABC):
    """Samples value sizes (bytes) for a workload."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Return ``n`` sizes as an int64 array (all >= 1)."""

    @property
    @abstractmethod
    def max_size(self) -> int:
        """Upper bound on any sampled size (drives buffer provisioning)."""

    def mean_size(self, rng: np.random.Generator, n: int = 100_000) -> float:
        """Empirical mean (used for reporting and sanity checks)."""
        return float(self.sample(rng, n).mean())


@dataclass(frozen=True)
class FixedSize(ValueSizeDistribution):
    """Every value the same size — Workload A / fillseq."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise WorkloadError(f"value size must be >= 1, got {self.size}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.size, dtype=np.int64)

    @property
    def max_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class TwoPointSizes(ValueSizeDistribution):
    """Two sizes at a fixed ratio — Workloads B (9:1) and C (1:9)."""

    small: int
    large: int
    small_fraction: float

    def __post_init__(self) -> None:
        if self.small < 1 or self.large < self.small:
            raise WorkloadError(
                f"need 1 <= small <= large, got {self.small}, {self.large}"
            )
        if not 0.0 <= self.small_fraction <= 1.0:
            raise WorkloadError(f"bad small_fraction {self.small_fraction}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        picks = rng.random(n) < self.small_fraction
        return np.where(picks, self.small, self.large).astype(np.int64)

    @property
    def max_size(self) -> int:
        return self.large


@dataclass(frozen=True)
class UniformChoiceSizes(ValueSizeDistribution):
    """Equal-probability choice from a size set — Workload D."""

    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise WorkloadError("need at least one size")
        if any(s < 1 for s in self.sizes):
            raise WorkloadError("sizes must all be >= 1")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(np.asarray(self.sizes, dtype=np.int64), size=n)

    @property
    def max_size(self) -> int:
        return max(self.sizes)


@dataclass(frozen=True)
class MixGraphSizes(ValueSizeDistribution):
    """db_bench mixgraph value sizes: Generalized Pareto, capped (W(M)).

    GPD inverse CDF with θ = 0: ``x = σ/ξ · ((1-u)^(-ξ) - 1)``.
    """

    sigma: float = 25.45
    xi: float = 0.2615
    cap: int = 1024
    floor: int = 1

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.xi <= 0:
            raise WorkloadError("GPD parameters must be positive")
        if not 1 <= self.floor <= self.cap:
            raise WorkloadError(f"bad floor/cap {self.floor}/{self.cap}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        x = (self.sigma / self.xi) * ((1.0 - u) ** (-self.xi) - 1.0)
        return np.clip(np.ceil(x), self.floor, self.cap).astype(np.int64)

    @property
    def max_size(self) -> int:
        return self.cap

    def fraction_below(self, threshold: int, rng: np.random.Generator | None = None) -> float:
        """Analytic P(size < threshold) — the paper's "~70 % under 35 B"."""
        if threshold <= self.floor:
            return 0.0
        x = float(threshold)
        return 1.0 - (1.0 + self.xi * x / self.sigma) ** (-1.0 / self.xi)
