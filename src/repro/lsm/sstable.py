"""SSTables: immutable sorted runs of (key → vLog address) index entries.

Because values live in the vLog, SSTable entries are small and fixed-shape;
a flush or compaction writes *index* pages only — the key-value-separation
property that keeps compaction write amplification off the value bytes
(paper §2.1, WiscKey [23]).

On-page format (entries never span pages):

    page := entry_count:u16  entry*
    entry := key_size:u8  key  flags:u8  encoded_addr:u64  value_size:u32

Lookups binary-search in-memory fence keys (first key of each page), then
read exactly one NAND page through the FTL — charging the read latency and
counters the device would really pay.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import LSMError
from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.space import PageSpace
from repro.nand.ftl import PageMappedFTL

_FLAG_TOMBSTONE = 0x01
_PAGE_HEADER = struct.Struct("<H")
_ENTRY_FIXED = struct.Struct("<BQI")  # flags, encoded addr, value size

#: Entry type: (key, address-or-None-for-tombstone).
Entry = tuple[bytes, ValueAddress | None]


def encode_entry(
    key: bytes, addr: ValueAddress | None, scheme: AddressingScheme, page_size: int
) -> bytes:
    if not 0 < len(key) <= 255:
        raise LSMError(f"key length {len(key)} not in 1..255")
    if addr is None:
        body = _ENTRY_FIXED.pack(_FLAG_TOMBSTONE, 0, 0)
    else:
        body = _ENTRY_FIXED.pack(0, scheme.encode(addr, page_size), addr.size)
    return bytes([len(key)]) + key + body


def decode_entries(
    page: bytes, scheme: AddressingScheme, page_size: int
) -> list[Entry]:
    """Parse all entries from one SSTable page."""
    (count,) = _PAGE_HEADER.unpack_from(page, 0)
    pos = _PAGE_HEADER.size
    out: list[Entry] = []
    for _ in range(count):
        key_size = page[pos]
        pos += 1
        key = bytes(page[pos : pos + key_size])
        pos += key_size
        flags, encoded, vsize = _ENTRY_FIXED.unpack_from(page, pos)
        pos += _ENTRY_FIXED.size
        if flags & _FLAG_TOMBSTONE:
            out.append((key, None))
        else:
            out.append((key, scheme.decode(encoded, vsize, page_size)))
    return out


@dataclass(frozen=True)
class _PageMeta:
    lpn: int
    first_key: bytes
    last_key: bytes


class SSTable:
    """An immutable sorted run persisted to NAND index pages."""

    _next_id = 0

    def __init__(
        self,
        table_id: int,
        pages: list[_PageMeta],
        entry_count: int,
        scheme: AddressingScheme,
        page_size: int,
    ) -> None:
        if not pages:
            raise LSMError("SSTable must have at least one page")
        self.table_id = table_id
        self._pages = pages
        self.entry_count = entry_count
        self.scheme = scheme
        self.page_size = page_size
        self.min_key = pages[0].first_key
        self.max_key = pages[-1].last_key

    # --- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        items: Iterable[Entry],
        ftl: PageMappedFTL,
        space: PageSpace,
        scheme: AddressingScheme,
    ) -> "SSTable":
        """Serialize sorted ``items`` into NAND pages via the FTL."""
        page_size = ftl.flash.geometry.page_size
        pages: list[_PageMeta] = []
        # Serialization never reads back from the FTL, so page programs are
        # deferred and issued as a single ordered write_many batch at the end.
        pending: list[tuple[int, bytes]] = []
        buf = bytearray(_PAGE_HEADER.size)
        keys_in_page: list[bytes] = []
        entry_count = 0
        prev_key: bytes | None = None

        def flush_page() -> None:
            nonlocal buf, keys_in_page
            if not keys_in_page:
                return
            _PAGE_HEADER.pack_into(buf, 0, len(keys_in_page))
            lpn = space.alloc()
            pending.append((lpn, bytes(buf)))
            pages.append(
                _PageMeta(lpn=lpn, first_key=keys_in_page[0], last_key=keys_in_page[-1])
            )
            buf = bytearray(_PAGE_HEADER.size)
            keys_in_page = []

        for key, addr in items:
            if prev_key is not None and key <= prev_key:
                raise LSMError(
                    f"SSTable input not strictly sorted: {key!r} after {prev_key!r}"
                )
            prev_key = key
            blob = encode_entry(key, addr, scheme, page_size)
            if len(buf) + len(blob) > page_size:
                flush_page()
            buf += blob
            keys_in_page.append(key)
            entry_count += 1
        flush_page()
        if entry_count == 0:
            raise LSMError("cannot build an empty SSTable")
        ftl.write_many(pending)
        cls._next_id += 1
        return cls(cls._next_id, pages, entry_count, scheme, page_size)

    # --- queries -------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def lpns(self) -> list[int]:
        return [p.lpn for p in self._pages]

    def key_range_overlaps(self, lo: bytes, hi: bytes) -> bool:
        return not (self.max_key < lo or hi < self.min_key)

    def may_contain(self, key: bytes) -> bool:
        return self.min_key <= key <= self.max_key

    def _page_index_for(self, key: bytes) -> int | None:
        """Binary search over fence keys; None if key < table min."""
        lo, hi = 0, len(self._pages) - 1
        best = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._pages[mid].first_key <= key:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def get(self, key: bytes, ftl: PageMappedFTL) -> tuple[bool, ValueAddress | None]:
        """(found, address). Reads at most one NAND page."""
        if not self.may_contain(key):
            return False, None
        idx = self._page_index_for(key)
        if idx is None:
            return False, None
        meta = self._pages[idx]
        if key > meta.last_key:
            return False, None
        page = ftl.read(meta.lpn)
        for entry_key, addr in decode_entries(page, self.scheme, self.page_size):
            if entry_key == key:
                return True, addr
        return False, None

    def iter_entries(
        self, ftl: PageMappedFTL, start_key: bytes = b""
    ) -> Iterator[Entry]:
        """All entries with key >= start_key, in order (reads pages lazily)."""
        start_idx = 0
        if start_key:
            idx = self._page_index_for(start_key)
            start_idx = 0 if idx is None else idx
        for meta in self._pages[start_idx:]:
            if meta.last_key < start_key:
                continue
            page = ftl.read(meta.lpn)
            for entry_key, addr in decode_entries(page, self.scheme, self.page_size):
                if entry_key >= start_key:
                    yield entry_key, addr

    def release(self, ftl: PageMappedFTL, space: PageSpace) -> None:
        """Drop the table's pages (post-compaction cleanup)."""
        for meta in self._pages:
            ftl.trim(meta.lpn)
            space.free(meta.lpn)

    def __repr__(self) -> str:
        return (
            f"SSTable(id={self.table_id}, entries={self.entry_count}, "
            f"pages={self.page_count}, range=[{self.min_key!r}, {self.max_key!r}])"
        )
