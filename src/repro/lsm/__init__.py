"""In-device LSM-tree KVS with key-value separation and a value log."""

from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import SSTable
from repro.lsm.tree import LSMTree
from repro.lsm.vlog import VLog

__all__ = [
    "AddressingScheme",
    "ValueAddress",
    "MemTable",
    "SSTable",
    "LSMTree",
    "VLog",
]
