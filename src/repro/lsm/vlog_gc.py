"""vLog garbage collection (WiscKey-style), an extension beyond the paper.

The paper's vLog is append-only: every overwrite or delete strands the old
value's bytes in a flushed NAND page forever. Key-value-separated stores
reclaim that space with a value-log compactor (WiscKey [23]; PinK ships an
equivalent). This one works the index-scan way:

1. choose a victim range: flushed logical pages from the last compaction
   frontier up to (at most) the buffer's first still-open entry;
2. collect the live (key, address) pairs whose values *start* in the range
   by scanning the LSM-tree (materialized first — relocation mutates it);
3. rewrite each surviving value at the packing policy's write pointer (a
   device-internal memcpy, charged to the clock) and re-index it;
4. trim every mapped page in the range so the FTL can reclaim the flash.

Values may span past the range end; they are still fully relocated, and the
pages beyond the cutoff simply keep some newly-dead bytes until their own
turn comes.

Logical-space note: relocated values consume fresh logical pages at the
vLog tail — physical flash is reclaimed, logical page numbers are not. A
production design would wrap the logical space; here the vLog's logical
capacity bounds total bytes ever appended, which is ample for simulation
runs and keeps addresses monotone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packing import NandPageBuffer, PackingPolicy
from repro.errors import VLogError
from repro.lsm.tree import LSMTree
from repro.sim.stats import MetricSet


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction round accomplished."""

    pages_examined: int
    values_moved: int
    bytes_moved: int
    pages_trimmed: int

    @property
    def did_work(self) -> bool:
        return self.pages_examined > 0


class VLogCompactor:
    """Reclaims dead value bytes from the flushed head of the vLog."""

    def __init__(
        self,
        lsm: LSMTree,
        policy: PackingPolicy,
        buffer: NandPageBuffer,
    ) -> None:
        self.lsm = lsm
        self.policy = policy
        self.buffer = buffer
        self.vlog = lsm.vlog
        self._compacted_through = self.vlog.base_lpn
        self.metrics = MetricSet("vlog_gc")
        self.metrics.counter("rounds")
        self.metrics.counter("values_moved")
        self.metrics.counter("bytes_moved")
        self.metrics.counter("pages_trimmed")

    # --- observation -------------------------------------------------------

    @property
    def compacted_through_lpn(self) -> int:
        return self._compacted_through

    def _flushed_frontier_lpn(self) -> int:
        """First logical page that is still open in the buffer."""
        open_lpns = [
            self.vlog.base_lpn + index for index in self.buffer._open  # noqa: SLF001
        ]
        if open_lpns:
            return min(open_lpns)
        return self.vlog.base_lpn + self.vlog.pages_allocated

    def live_bytes(self) -> int:
        """Bytes of values currently referenced by the LSM-tree."""
        return sum(addr.size for _, addr in self.lsm.scan_from(b""))

    def dead_fraction(self) -> float:
        """Dead share of the flushed, not-yet-compacted vLog region."""
        frontier = self._flushed_frontier_lpn()
        region_pages = frontier - self._compacted_through
        if region_pages <= 0:
            return 0.0
        region_bytes = region_pages * self.vlog.page_size
        live = sum(
            addr.size
            for _, addr in self.lsm.scan_from(b"")
            if self._compacted_through <= addr.lpn < frontier
        )
        return max(0.0, 1.0 - live / region_bytes)

    # --- compaction ----------------------------------------------------------

    def compact(self, max_pages: int | None = None) -> CompactionReport:
        """Run one round over up to ``max_pages`` flushed pages."""
        start = self._compacted_through
        frontier = self._flushed_frontier_lpn()
        cutoff = frontier if max_pages is None else min(frontier, start + max_pages)
        if cutoff <= start:
            return CompactionReport(0, 0, 0, 0)

        # Materialize victims before mutating the tree: relocation triggers
        # MemTable flushes/compactions that would invalidate live iterators.
        victims = [
            (key, addr)
            for key, addr in self.lsm.scan_from(b"")
            if start <= addr.lpn < cutoff
        ]

        moved_bytes = 0
        latency = self.lsm.latency
        clock = self.lsm.clock
        for key, addr in victims:
            value = self.vlog.read(addr)  # NAND reads charged via FTL
            placement = self.policy.place_piggyback(len(value))
            self.buffer.write_bytes(placement.value_offset, value)
            clock.advance(latency.memcpy_us(len(value)))
            new_addr = self.buffer.addr_of(placement.value_offset, len(value))
            # Guard against relocating into the range being reclaimed.
            if new_addr.lpn < cutoff:
                raise VLogError(
                    f"compactor relocated into victim range: {new_addr.lpn} < {cutoff}"
                )
            self.lsm.put(key, new_addr)
            self.policy.finalize_value()
            moved_bytes += len(value)

        trimmed = 0
        journal = self.lsm.journal
        for lpn in range(start, cutoff):
            if self.vlog.ftl.is_mapped(lpn):
                if journal is not None:
                    # Crash-consistency mode: the durable index may still
                    # reference this page — trim only once the next
                    # manifest checkpoint is durable.
                    journal.defer_vlog_trim(lpn)
                else:
                    self.vlog.ftl.trim(lpn)
                trimmed += 1
        if journal is not None:
            # Recorded in the next manifest so remount never re-maps the
            # reclaimed range (trimmed-then-crashed pages must not
            # resurrect once the trim is durable).
            journal.vlog_trimmed_through = max(
                journal.vlog_trimmed_through, cutoff
            )
        self._compacted_through = cutoff

        self.metrics.counter("rounds").add(1)
        self.metrics.counter("values_moved").add(len(victims))
        self.metrics.counter("bytes_moved").add(moved_bytes)
        self.metrics.counter("pages_trimmed").add(trimmed)
        return CompactionReport(
            pages_examined=cutoff - start,
            values_moved=len(victims),
            bytes_moved=moved_bytes,
            pages_trimmed=trimmed,
        )

    def compact_if_needed(
        self, dead_threshold: float = 0.5, max_pages: int | None = None
    ) -> CompactionReport:
        """Compact only when the dead fraction crosses ``dead_threshold``."""
        if not 0.0 <= dead_threshold <= 1.0:
            raise VLogError(f"dead_threshold must be in [0,1], got {dead_threshold}")
        if self.dead_fraction() < dead_threshold:
            return CompactionReport(0, 0, 0, 0)
        return self.compact(max_pages=max_pages)
