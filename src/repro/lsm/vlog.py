"""The value log (vLog): a linear logical NAND page space for values.

Values are appended to the vLog through the NAND page buffer (the packing
policies in :mod:`repro.core.packing` decide *where inside* each page).
The vLog itself owns two things:

* **tail allocation** — handing out consecutive logical page numbers as
  the buffer opens new entries, and
* **read-through** — resolving a :class:`ValueAddress` to bytes, serving
  from the unflushed buffer when the page has not reached NAND yet
  (read-your-writes), else from flash via the FTL. Reads may span
  consecutive logical pages (multi-page DMA values).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import VLogError
from repro.lsm.addressing import ValueAddress
from repro.nand.ftl import PageMappedFTL
from repro.sim.stats import MetricSet


class UnflushedReader(Protocol):
    """Interface the NAND page buffer exposes to the vLog read path."""

    def unflushed_page(self, lpn: int) -> bytes | None:
        """Current bytes of logical page ``lpn`` if it is still buffered."""
        ...


class _NoBuffer:
    """Placeholder reader before the buffer is wired up."""

    def unflushed_page(self, lpn: int) -> bytes | None:
        return None


class VLog:
    """A [base_lpn, base_lpn + capacity_pages) slice of logical page space."""

    def __init__(
        self,
        ftl: PageMappedFTL,
        base_lpn: int,
        capacity_pages: int,
    ) -> None:
        if base_lpn < 0:
            raise VLogError(f"negative base LPN {base_lpn}")
        if capacity_pages <= 0:
            raise VLogError(f"capacity must be positive, got {capacity_pages}")
        self.ftl = ftl
        self.base_lpn = base_lpn
        self.capacity_pages = capacity_pages
        self._next_lpn = base_lpn
        self._buffer: UnflushedReader = _NoBuffer()
        self.page_size = ftl.flash.geometry.page_size
        self.metrics = MetricSet("vlog")
        # Cached: bumped on every allocation / read.
        self._c_pages_allocated = self.metrics.counter("pages_allocated")
        self._c_reads = self.metrics.counter("reads")
        self._c_bytes_read = self.metrics.counter("bytes_read")

    def attach_buffer(self, buffer: UnflushedReader) -> None:
        """Wire the NAND page buffer in for read-your-writes."""
        self._buffer = buffer

    @property
    def end_lpn(self) -> int:
        return self.base_lpn + self.capacity_pages

    @property
    def pages_allocated(self) -> int:
        return self._next_lpn - self.base_lpn

    def contains(self, lpn: int) -> bool:
        return self.base_lpn <= lpn < self.end_lpn

    def resume(self, next_lpn: int) -> None:
        """Reset the tail allocator after remount.

        Recovery rebuilds the FTL mapping from OOB metadata, then resumes
        the vLog tail just past the last *durable* logical page; logical
        pages that were open in the lost write buffer are reallocated.
        """
        if not self.base_lpn <= next_lpn <= self.end_lpn:
            raise VLogError(
                f"resume LPN {next_lpn} outside vLog "
                f"[{self.base_lpn}, {self.end_lpn}]"
            )
        self._next_lpn = next_lpn

    def alloc_page(self) -> int:
        """Allocate the next logical page at the vLog tail."""
        if self._next_lpn >= self.end_lpn:
            raise VLogError(
                f"vLog exhausted: {self.capacity_pages} pages allocated"
            )
        lpn = self._next_lpn
        self._next_lpn += 1
        self._c_pages_allocated.add(1)
        return lpn

    def _page_bytes(self, lpn: int) -> bytes:
        if not self.contains(lpn):
            raise VLogError(f"LPN {lpn} outside vLog [{self.base_lpn}, {self.end_lpn})")
        buffered = self._buffer.unflushed_page(lpn)
        if buffered is not None:
            return buffered
        return self.ftl.read(lpn)

    def read(self, addr: ValueAddress) -> bytes:
        """Fetch a value's bytes, spanning pages as needed."""
        if addr.offset >= self.page_size:
            raise VLogError(
                f"address offset {addr.offset} outside page of {self.page_size}"
            )
        if addr.size <= self.page_size - addr.offset:
            # Single-page value (the common case): slice it straight out.
            page = self._page_bytes(addr.lpn)
            chunk = page[addr.offset : addr.offset + addr.size]
            if len(chunk) < addr.size:
                raise VLogError(
                    f"torn read at LPN {addr.lpn}: wanted {addr.size} bytes "
                    f"at offset {addr.offset}, page holds {len(page)}"
                )
            self._c_reads.add(1)
            self._c_bytes_read.add(addr.size)
            return chunk
        out = bytearray()
        lpn = addr.lpn
        offset = addr.offset
        remaining = addr.size
        while remaining > 0:
            page = self._page_bytes(lpn)
            take = min(remaining, self.page_size - offset)
            chunk = page[offset : offset + take]
            if len(chunk) < take:
                raise VLogError(
                    f"torn read at LPN {lpn}: wanted {take} bytes at "
                    f"offset {offset}, page holds {len(page)}"
                )
            out += chunk
            remaining -= take
            lpn += 1
            offset = 0
        self._c_reads.add(1)
        self._c_bytes_read.add(addr.size)
        return bytes(out)
