"""The LSM-tree facade the KV-SSD controller talks to.

Ties together the MemTable, the leveled SSTable store and the vLog into the
paper's "LSM-tree with Fine-Grained Value Addressing" (§3.4). PUTs insert
key → :class:`ValueAddress`; GET resolves an address and reads the value
back through the vLog (buffer or NAND); SEEK/NEXT expose a merged ordered
scan for the iterator interface of the underlying KV-SSD [22].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KeyNotFoundError, LSMError
from repro.lsm.addressing import AddressingScheme, ValueAddress
from repro.lsm.iterators import merge_entries
from repro.lsm.levels import LeveledStore
from repro.lsm.memtable import MemTable
from repro.lsm.space import PageSpace
from repro.lsm.vlog import VLog
from repro.nand.ftl import PageMappedFTL
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.units import KIB


@dataclass(frozen=True)
class LSMConfig:
    """Tuning knobs for the in-device tree."""

    #: MemTable flush threshold (approximate bytes of index entries).
    memtable_flush_bytes: int = 256 * KIB
    #: Value addressing granularity (FINE enables fine-grained packing).
    scheme: AddressingScheme = AddressingScheme.FINE
    l0_compaction_trigger: int = 4
    l1_page_budget: int = 64
    level_size_ratio: int = 10
    max_levels: int = 6

    def __post_init__(self) -> None:
        if self.memtable_flush_bytes < 1 * KIB:
            raise LSMError("memtable_flush_bytes unreasonably small")


class LSMTree:
    """Key → value-address index with key-value separation."""

    def __init__(
        self,
        ftl: PageMappedFTL,
        vlog: VLog,
        sstable_space: PageSpace,
        clock: SimClock,
        latency: LatencyModel,
        config: LSMConfig | None = None,
        journal=None,
    ) -> None:
        self.config = config or LSMConfig()
        self.ftl = ftl
        self.vlog = vlog
        self.clock = clock
        self.latency = latency
        #: Durability journal (crash-consistency mode) or None; consulted
        #: by the vLog compactor to defer trims past the next checkpoint.
        self.journal = journal
        self.memtable = MemTable(self.config.scheme)
        #: Monotonic index-operation sequence number; the durability
        #: journal stamps vlog value-directory entries with it so remount
        #: can replay exactly the ops newer than the last checkpoint.
        self.last_op_seq = 0
        self.store = LeveledStore(
            ftl,
            sstable_space,
            self.config.scheme,
            max_levels=self.config.max_levels,
            l0_compaction_trigger=self.config.l0_compaction_trigger,
            l1_page_budget=self.config.l1_page_budget,
            level_size_ratio=self.config.level_size_ratio,
            journal=journal,
        )

    # --- write path ---------------------------------------------------------

    def put(self, key: bytes, addr: ValueAddress) -> None:
        """Index a value that packing already placed in the vLog."""
        self.clock.advance(self.latency.memtable_insert_us)
        self.last_op_seq += 1
        self.memtable.put(key, addr)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self.clock.advance(self.latency.memtable_insert_us)
        self.last_op_seq += 1
        self.memtable.delete(key)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self.memtable.approx_bytes >= self.config.memtable_flush_bytes:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Persist the MemTable as an L0 SSTable and reset it (§3.4:
        "even though the size of MemTable increases, it remains constant
        due to LSM-tree flushes and resets")."""
        if self.memtable.is_empty:
            return
        self.store.add_flush(self.memtable.sorted_items())
        self.memtable.clear()

    # --- read path -----------------------------------------------------------

    def get_address(self, key: bytes) -> ValueAddress:
        """Resolve a key to its vLog address or raise KeyNotFoundError."""
        found, addr = self.memtable.get(key)
        if not found:
            self.clock.advance(self.latency.lsm_probe_us)
            found, addr = self.store.get(key)
        if not found or addr is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        return addr

    def get(self, key: bytes) -> bytes:
        """Full GET: index probe + vLog read."""
        return self.vlog.read(self.get_address(key))

    def exists(self, key: bytes) -> bool:
        try:
            self.get_address(key)
            return True
        except KeyNotFoundError:
            return False

    # --- ordered scan (SEEK / NEXT) -------------------------------------------

    def scan_from(self, start_key: bytes):
        """Ordered (key, address) pairs with key >= start_key.

        Tombstones and shadowed versions are resolved; the caller reads
        values through the vLog as it consumes the iterator.
        """
        sources = [self.memtable.items_from(start_key)]
        sources.extend(self.store.iter_sources_from(start_key))
        for key, addr in merge_entries(sources):
            if addr is None:
                continue  # tombstone
            yield key, addr

    # --- stats -----------------------------------------------------------------

    @property
    def flush_count(self) -> int:
        return self.store.metrics.counter("flushes").value

    @property
    def compaction_count(self) -> int:
        return self.store.metrics.counter("compactions").value

    def entry_addr_bits(self) -> int:
        """Bits per index entry spent on vLog addressing (§3.4 ablation)."""
        return self.config.scheme.entry_addr_bits(
            self.vlog.capacity_pages, self.vlog.page_size
        )
