"""MemTable: the in-memory head of the LSM-tree.

With key-value separation the MemTable holds key → :class:`ValueAddress`
(the value itself is already in the vLog / NAND page buffer), so a flush
writes only index entries. Keys are kept sorted incrementally (bisect over
a key list) because SEEK/NEXT must scan the MemTable in order alongside
SSTables.

Tombstones are entries whose address is ``None`` — they shadow older
versions in lower levels until compaction drops them at the bottom.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

from repro.errors import LSMError
from repro.lsm.addressing import AddressingScheme, ValueAddress

#: Fixed per-entry overhead besides key bytes: encoded address (assume the
#: fine-grained worst case rounded to bytes) + 4-byte size + 1 flag byte.
_ENTRY_OVERHEAD_BYTES = 8 + 4 + 1


class MemTable:
    """Sorted key → address map with byte-size accounting for flush policy."""

    def __init__(self, scheme: AddressingScheme = AddressingScheme.FINE) -> None:
        self.scheme = scheme
        self._entries: dict[bytes, ValueAddress | None] = {}
        self._sorted_keys: list[bytes] = []
        self._approx_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def approx_bytes(self) -> int:
        """Approximate memory footprint, drives the flush threshold."""
        return self._approx_bytes

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def put(self, key: bytes, addr: ValueAddress) -> None:
        if not key:
            raise LSMError("empty key")
        self._insert(key, addr)

    def delete(self, key: bytes) -> None:
        """Record a tombstone (shadowing any older version below)."""
        if not key:
            raise LSMError("empty key")
        self._insert(key, None)

    def _insert(self, key: bytes, addr: ValueAddress | None) -> None:
        if key not in self._entries:
            insort(self._sorted_keys, key)
            self._approx_bytes += len(key) + _ENTRY_OVERHEAD_BYTES
        self._entries[key] = addr

    def get(self, key: bytes) -> tuple[bool, ValueAddress | None]:
        """(found, address); found tombstones return (True, None)."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def items_from(self, start_key: bytes) -> Iterator[tuple[bytes, ValueAddress | None]]:
        """Sorted (key, address) pairs with key >= start_key."""
        idx = bisect_left(self._sorted_keys, start_key)
        for key in self._sorted_keys[idx:]:
            yield key, self._entries[key]

    def sorted_items(self) -> list[tuple[bytes, ValueAddress | None]]:
        """All entries in key order (flush input)."""
        return [(k, self._entries[k]) for k in self._sorted_keys]

    def clear(self) -> None:
        self._entries.clear()
        self._sorted_keys.clear()
        self._approx_bytes = 0
