"""Leveled LSM structure and compaction.

L0 holds whole MemTable flushes (tables may overlap); L1+ are sorted,
non-overlapping runs. Compaction merges index entries only — values stay in
the vLog untouched (key-value separation), which is why the paper's WAF is
dominated by value placement rather than compaction rewrites.

Compaction policy (size-tiered trigger, leveled merge — the shape used by
PinK/iLSM-class devices):

* L0 reaching ``l0_compaction_trigger`` tables → merge all of L0 with the
  overlapping part of L1.
* Level *i* exceeding ``level_page_budget(i)`` pages → merge its oldest
  table with the overlapping part of level *i+1*.
* Tombstones are dropped only when the output level is the lowest
  populated one.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import LSMError
from repro.lsm.addressing import AddressingScheme
from repro.lsm.iterators import Entry, drop_tombstones, merge_entries
from repro.lsm.space import PageSpace
from repro.lsm.sstable import SSTable
from repro.nand.ftl import PageMappedFTL
from repro.sim.stats import MetricSet


class LeveledStore:
    """The on-NAND part of the LSM-tree: L0 .. Lmax of SSTables."""

    def __init__(
        self,
        ftl: PageMappedFTL,
        space: PageSpace,
        scheme: AddressingScheme,
        max_levels: int = 6,
        l0_compaction_trigger: int = 4,
        l1_page_budget: int = 64,
        level_size_ratio: int = 10,
        table_page_budget: int = 16,
        journal=None,
    ) -> None:
        if max_levels < 2:
            raise LSMError(f"need at least 2 levels, got {max_levels}")
        if l0_compaction_trigger < 1 or level_size_ratio < 2 or table_page_budget < 1:
            raise LSMError("bad compaction parameters")
        self.ftl = ftl
        self.space = space
        #: Durability journal (crash-consistency mode); when present, dead
        #: tables are *deferred-released* — their pages stay mapped until
        #: the next manifest write, so a crash before the manifest lands
        #: can still recover the previous checkpoint's tables.
        self._journal = journal
        self.scheme = scheme
        self.max_levels = max_levels
        self.l0_compaction_trigger = l0_compaction_trigger
        self.l1_page_budget = l1_page_budget
        self.level_size_ratio = level_size_ratio
        self.table_page_budget = table_page_budget
        #: levels[0] ordered newest-first; levels[1:] ordered by min_key.
        self.levels: list[list[SSTable]] = [[] for _ in range(max_levels)]
        self.metrics = MetricSet("lsm")
        self.metrics.counter("flushes")
        self.metrics.counter("compactions")
        self.metrics.counter("tables_written")

    # --- observation --------------------------------------------------------

    def level_page_budget(self, level: int) -> int:
        if level == 0:
            raise LSMError("L0 is table-count-triggered, not page-budgeted")
        return self.l1_page_budget * self.level_size_ratio ** (level - 1)

    def level_pages(self, level: int) -> int:
        return sum(t.page_count for t in self.levels[level])

    @property
    def table_count(self) -> int:
        return sum(len(lv) for lv in self.levels)

    def lowest_populated_level(self) -> int:
        """Index of the deepest non-empty level (0 if all empty)."""
        for level in range(self.max_levels - 1, -1, -1):
            if self.levels[level]:
                return level
        return 0

    # --- ingestion -----------------------------------------------------------

    def add_flush(self, items: list[Entry]) -> SSTable:
        """Persist a MemTable flush as a new L0 table, then rebalance."""
        if not items:
            raise LSMError("flush of empty item list")
        table = SSTable.build(items, self.ftl, self.space, self.scheme)
        self.levels[0].insert(0, table)  # newest first
        self.metrics.counter("flushes").add(1)
        self.metrics.counter("tables_written").add(1)
        self.maybe_compact()
        return table

    # --- read path -----------------------------------------------------------

    def get(self, key: bytes):
        """(found, address_or_None). Probes newest-to-oldest."""
        for table in self.levels[0]:
            found, addr = table.get(key, self.ftl)
            if found:
                return True, addr
        for level in range(1, self.max_levels):
            for table in self.levels[level]:
                if table.may_contain(key):
                    found, addr = table.get(key, self.ftl)
                    if found:
                        return True, addr
                    break  # non-overlapping: only one table can hold it
        return False, None

    def iter_sources_from(self, start_key: bytes) -> list[Iterator[Entry]]:
        """Per-table sorted iterators, newest first (for merged scans)."""
        sources: list[Iterator[Entry]] = []
        for table in self.levels[0]:
            sources.append(table.iter_entries(self.ftl, start_key))
        for level in range(1, self.max_levels):
            for table in self.levels[level]:
                sources.append(table.iter_entries(self.ftl, start_key))
        return sources

    # --- compaction -----------------------------------------------------------

    def maybe_compact(self) -> None:
        """Rebalance until every level is within budget."""
        guard = 0
        while True:
            guard += 1
            if guard > 64:
                raise LSMError("compaction did not converge (loop guard)")
            if len(self.levels[0]) >= self.l0_compaction_trigger:
                self._compact_l0()
                continue
            for level in range(1, self.max_levels - 1):
                if self.level_pages(level) > self.level_page_budget(level):
                    self._compact_level(level)
                    break
            else:
                return

    def _build_tables(self, entries: Iterator[Entry]) -> list[SSTable]:
        """Split a merged entry stream into budget-sized output tables."""
        out: list[SSTable] = []
        page_size = self.ftl.flash.geometry.page_size
        batch: list[Entry] = []
        batch_bytes = 0
        budget_bytes = self.table_page_budget * page_size
        for key, addr in entries:
            entry_bytes = 1 + len(key) + 13
            if batch and batch_bytes + entry_bytes > budget_bytes:
                out.append(SSTable.build(batch, self.ftl, self.space, self.scheme))
                batch, batch_bytes = [], 0
            batch.append((key, addr))
            batch_bytes += entry_bytes
        if batch:
            out.append(SSTable.build(batch, self.ftl, self.space, self.scheme))
        self.metrics.counter("tables_written").add(len(out))
        return out

    def _compact_l0(self) -> None:
        """Merge all of L0 plus overlapping L1 tables into new L1 tables."""
        inputs_new = list(self.levels[0])  # newest first already
        lo = min(t.min_key for t in inputs_new)
        hi = max(t.max_key for t in inputs_new)
        overlapping = [t for t in self.levels[1] if t.key_range_overlaps(lo, hi)]
        keep = [t for t in self.levels[1] if not t.key_range_overlaps(lo, hi)]
        sources = [t.iter_entries(self.ftl) for t in inputs_new + overlapping]
        merged = merge_entries(sources)
        if self.lowest_populated_level() <= 1:
            merged = drop_tombstones(merged)
        new_tables = self._build_tables(merged)
        self.levels[0] = []
        self.levels[1] = sorted(keep + new_tables, key=lambda t: t.min_key)
        for t in inputs_new + overlapping:
            self._release(t)
        self.metrics.counter("compactions").add(1)

    def _compact_level(self, level: int) -> None:
        """Push one table from ``level`` down into ``level+1``."""
        if not self.levels[level]:
            return
        victim = self.levels[level][0]  # oldest/leftmost
        below = self.levels[level + 1]
        overlapping = [
            t for t in below if t.key_range_overlaps(victim.min_key, victim.max_key)
        ]
        keep = [t for t in below if t not in overlapping]
        sources = [victim.iter_entries(self.ftl)] + [
            t.iter_entries(self.ftl) for t in overlapping
        ]
        merged = merge_entries(sources)
        if self.lowest_populated_level() <= level + 1:
            merged = drop_tombstones(merged)
        new_tables = self._build_tables(merged)
        self.levels[level] = self.levels[level][1:]
        self.levels[level + 1] = sorted(keep + new_tables, key=lambda t: t.min_key)
        self._release(victim)
        for t in overlapping:
            self._release(t)
        self.metrics.counter("compactions").add(1)

    def _release(self, table: SSTable) -> None:
        """Free a dead table's pages — immediately, or deferred until the
        next durable manifest in crash-consistency mode."""
        if self._journal is not None:
            self._journal.defer_release(table)
        else:
            table.release(self.ftl, self.space)
