"""Logical page space partitioning between the vLog and SSTable regions."""

from __future__ import annotations

from repro.errors import LSMError


class PageSpace:
    """A bump allocator over a [base, base+capacity) logical page range.

    SSTables allocate from a :class:`PageSpace` distinct from the vLog's
    range so value addresses and index pages never collide. Freed pages
    are recycled (SSTables die at compaction).
    """

    def __init__(self, base_lpn: int, capacity_pages: int) -> None:
        if base_lpn < 0:
            raise LSMError(f"negative base LPN {base_lpn}")
        if capacity_pages <= 0:
            raise LSMError(f"capacity must be positive, got {capacity_pages}")
        self.base_lpn = base_lpn
        self.capacity_pages = capacity_pages
        self._next = base_lpn
        self._free: list[int] = []

    @property
    def end_lpn(self) -> int:
        return self.base_lpn + self.capacity_pages

    @property
    def pages_in_use(self) -> int:
        return (self._next - self.base_lpn) - len(self._free)

    def alloc(self) -> int:
        if self._free:
            return self._free.pop()
        if self._next >= self.end_lpn:
            raise LSMError(
                f"logical space exhausted ({self.capacity_pages} pages)"
            )
        lpn = self._next
        self._next += 1
        return lpn

    def free(self, lpn: int) -> None:
        if not self.base_lpn <= lpn < self._next:
            raise LSMError(f"free of LPN {lpn} not allocated from this space")
        self._free.append(lpn)
