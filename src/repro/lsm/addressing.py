"""Value addressing over the vLog: page-unit vs fine-grained (paper §3.4).

A KV-separated LSM-tree stores, for each key, *where in the vLog* its value
lives. With block-style packing every value starts at a 4 KiB boundary, so
an address is (logical NAND page, 4 KiB slot) — 2 offset bits for a 16 KiB
page. Fine-grained packing places values at arbitrary byte offsets, so the
offset field must grow to byte granularity (14 bits for 16 KiB) — the
memory-cost trade-off §3.4 argues is worth it. Both schemes are implemented
and bit-accounted so the ablation bench can price the difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import VLogError
from repro.units import MEM_PAGE_SIZE, is_aligned


@dataclass(frozen=True, order=True)
class ValueAddress:
    """Location of one value in the vLog's logical page space."""

    lpn: int
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.lpn < 0:
            raise VLogError(f"negative LPN {self.lpn}")
        if self.offset < 0:
            raise VLogError(f"negative offset {self.offset}")
        if self.size <= 0:
            raise VLogError(f"value size must be positive, got {self.size}")

    @property
    def end_offset(self) -> int:
        return self.offset + self.size


class AddressingScheme(enum.Enum):
    """How LSM entries encode a :class:`ValueAddress`."""

    #: Byte-granular offsets — required by fine-grained packing (§3.4).
    FINE = "fine"
    #: 4 KiB-slot offsets — sufficient for the Block baseline only.
    PAGE = "page"

    def offset_bits(self, nand_page_size: int) -> int:
        if self is AddressingScheme.FINE:
            return max(1, (nand_page_size - 1).bit_length())
        slots = nand_page_size // MEM_PAGE_SIZE
        return max(1, (slots - 1).bit_length())

    def lpn_bits(self, vlog_pages: int) -> int:
        return max(1, (vlog_pages - 1).bit_length())

    def entry_addr_bits(self, vlog_pages: int, nand_page_size: int) -> int:
        """Bits per LSM entry spent on the vLog address (excl. size field).

        Paper example (§3.3.3): 1 TB of 16 KiB pages → 26 LPN bits; page
        scheme adds 2 offset bits (28 total), fine scheme adds 14 (40).
        """
        return self.lpn_bits(vlog_pages) + self.offset_bits(nand_page_size)

    def encode(self, addr: ValueAddress, nand_page_size: int) -> int:
        """Pack (lpn, offset) into an integer; size travels separately."""
        bits = self.offset_bits(nand_page_size)
        if self is AddressingScheme.FINE:
            if addr.offset >= nand_page_size:
                raise VLogError(
                    f"offset {addr.offset} outside NAND page of {nand_page_size}"
                )
            return (addr.lpn << bits) | addr.offset
        if not is_aligned(addr.offset, MEM_PAGE_SIZE):
            raise VLogError(
                f"page-unit addressing cannot encode byte offset {addr.offset}; "
                "fine-grained packing requires AddressingScheme.FINE (§3.4)"
            )
        slot = addr.offset // MEM_PAGE_SIZE
        if slot >= nand_page_size // MEM_PAGE_SIZE:
            raise VLogError(f"slot {slot} outside NAND page")
        return (addr.lpn << bits) | slot

    def decode(self, encoded: int, size: int, nand_page_size: int) -> ValueAddress:
        bits = self.offset_bits(nand_page_size)
        mask = (1 << bits) - 1
        lpn = encoded >> bits
        raw_offset = encoded & mask
        if self is AddressingScheme.FINE:
            offset = raw_offset
        else:
            offset = raw_offset * MEM_PAGE_SIZE
        return ValueAddress(lpn=lpn, offset=offset, size=size)
