"""K-way merge over LSM sources (MemTable + SSTables) with version shadowing.

Sources are supplied **newest first**; on duplicate keys the youngest
version wins and older ones are skipped — the semantics GET, SEEK/NEXT and
compaction all share.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.lsm.addressing import ValueAddress

Entry = tuple[bytes, ValueAddress | None]


def merge_entries(sources: list[Iterable[Entry]]) -> Iterator[Entry]:
    """Merge sorted entry streams, newest source first, shadowing duplicates.

    Yields every surviving version including tombstones (address ``None``);
    the caller decides whether tombstones are dropped (bottom-level
    compaction) or kept (intermediate compaction, read path).
    """
    iters = [iter(src) for src in sources]
    heap: list[tuple[bytes, int, ValueAddress | None]] = []
    for priority, it in enumerate(iters):
        for key, addr in it:
            heapq.heappush(heap, (key, priority, addr))
            break
    last_key: bytes | None = None
    while heap:
        key, priority, addr = heapq.heappop(heap)
        for next_key, next_addr in iters[priority]:
            heapq.heappush(heap, (next_key, priority, next_addr))
            break
        if key == last_key:
            continue  # an older version of a key already emitted
        last_key = key
        yield key, addr


def drop_tombstones(entries: Iterable[Entry]) -> Iterator[Entry]:
    """Strip tombstones (terminal compaction into the bottom level)."""
    for key, addr in entries:
        if addr is not None:
            yield key, addr
