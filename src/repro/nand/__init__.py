"""NAND flash substrate: geometry, flash array, page-mapped FTL, GC."""

from repro.nand.flash import NandFlash
from repro.nand.ftl import PageMappedFTL
from repro.nand.gc import GreedyGarbageCollector
from repro.nand.geometry import NandGeometry, PageAddress

__all__ = [
    "NandFlash",
    "PageMappedFTL",
    "GreedyGarbageCollector",
    "NandGeometry",
    "PageAddress",
]
