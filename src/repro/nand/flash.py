"""The NAND flash array: program / read / erase with real constraints.

NAND semantics enforced here (violations raise, they never silently pass):

* a page is programmed at most once between erases (:class:`ProgramError`);
* pages within a block are programmed in ascending order;
* reads of never-programmed pages fail (no hidden zero pages);
* erase works on whole blocks only.

With a :class:`~repro.faults.FaultInjector` attached, program/read/erase
additionally consult the injector: failed programs consume their page and
raise :class:`ProgramFailedError` after the full tPROG (real NAND reports
failure only after the attempt), failed erases raise
:class:`EraseFailedError`, and reads record injected bit flips in
``last_read_bitflips`` for the FTL's ECC model to judge. Without an
injector every hook is a single ``is None`` check.

Timing goes through the per-channel/per-way
:class:`~repro.sim.timeline.NandTimeline`. In the default *synchronous*
mode every operation books its interval and advances the clock to the
booked end — on an idle module that is exactly the seed's serial
``clock.advance(duration)``, so queue-depth-1 behaviour is byte-identical
(docs/parallel-timing.md). Inside a :meth:`begin_deferred` /
:meth:`end_deferred` window the clock stays put and only the booked end
times accumulate; the pipelined driver uses that to overlap NAND work on
distinct ways across in-flight commands. Failed programs and erases book
their full tPROG/tBERS too — a die reports failure only after the attempt,
so the way is occupied either way.

Page content is stored sparsely (dict keyed by PPN) so a module with a
realistic logical capacity costs memory proportional to the data actually
written, not the module size. Each block tracks the set of PPNs it
actually holds, so erase clears only those instead of sweeping the whole
``pages_per_block`` range.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import (
    EraseFailedError,
    NandError,
    PowerLossError,
    ProgramError,
    ProgramFailedError,
)
from repro.faults.injector import FaultInjector
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.sim.stats import MetricSet
from repro.sim.timeline import NandTimeline


def page_crc(data: bytes) -> int:
    """Payload CRC stored in the OOB area (the torn-page detector)."""
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True, slots=True)
class PageOOB:
    """Per-page out-of-band (spare-area) metadata, programmed atomically
    with the page.

    Real NAND pages carry a spare area the FTL uses for crash recovery;
    here it holds the logical page number, a device-wide monotonic program
    sequence number (highest-seq-wins at remount), a payload CRC (a torn
    page's stored CRC never matches its stored payload), and an opaque
    ``meta`` tuple the durability journal uses for its vlog value
    directory. Pages programmed without OOB (plain ``program(ppn, data)``)
    cost nothing and cannot be recovered.
    """

    lpn: int
    seq: int
    crc: int = 0
    torn: bool = False
    meta: tuple = ()


class NandFlash:
    """A flash module with per-block program/erase bookkeeping."""

    def __init__(
        self,
        geometry: NandGeometry,
        clock: SimClock,
        latency: LatencyModel,
        injector: FaultInjector | None = None,
        tracer=None,
    ) -> None:
        self.geometry = geometry
        self.clock = clock
        self.latency = latency
        self.timeline = NandTimeline(geometry)
        self._injector = injector
        #: Optional repro.sim.trace.Tracer; every hook is one None check.
        self._tracer = tracer
        if tracer is not None:
            self.timeline.attach_tracer(tracer)
        #: Bit flips the most recent read returned (ECC input for the FTL).
        self.last_read_bitflips = 0
        self._pages: dict[int, bytes] = {}
        #: OOB/spare-area metadata, present only for pages programmed with
        #: ``oob=`` (i.e. in durability mode) — zero cost otherwise.
        self._oob: dict[int, PageOOB] = {}
        #: Next programmable page index per block (in-block program order).
        self._next_page: dict[int, int] = {}
        #: PPNs holding data, per block — erase clears exactly these.
        self._programmed_by_block: dict[int, set[int]] = {}
        self._erase_counts: dict[int, int] = {}
        #: Deferred-booking depth; >0 while a pipelined command executes.
        self._deferred = 0
        self._deferred_end_us = 0.0
        #: Deferred-*read* depth; >0 only inside a pipelined GET/EXIST
        #: command's read window (see begin_deferred_reads).
        self._defer_reads = 0
        #: Issue point for the next read of the current command: reads
        #: within one command chain (an index probe's result addresses the
        #: value read), while reads of different in-flight commands overlap.
        self._read_chain_us = 0.0
        #: Shared-page window for the current batch (ReadCoalescer | None).
        self._coalescer = None
        #: Lazily created: pipelined batches only (seed snapshots unchanged).
        self._c_coalesced_reads = None
        #: Booked end of the most recent page read (sync: == clock.now_us).
        #: The FTL stamps cache fills with it so a later hit on a page whose
        #: deferred fill is still in flight cannot complete before the fill.
        self.last_read_end_us = 0.0
        self.metrics = MetricSet("nand")
        # Pre-create (and cache — these are the per-op hot path) so
        # snapshots always include them.
        self._c_page_programs = self.metrics.counter("page_programs")
        self._c_page_reads = self.metrics.counter("page_reads")
        self._c_block_erases = self.metrics.counter("block_erases")
        self._c_bytes_programmed = self.metrics.counter("bytes_programmed")
        if injector is not None:
            self._c_program_failures = self.metrics.counter("program_failures")
            self._c_erase_failures = self.metrics.counter("erase_failures")
            self._c_read_bitflips = self.metrics.counter("read_bitflips")
        # Per-way index of a PPN: ppn // pages_per_way.
        self._pages_per_way = geometry.pages_per_block * geometry.blocks_per_way
        # Timing constants resolved once (latency is immutable): the derived
        # xfer properties compute a min() per access otherwise.
        self._t_program_us = latency.nand_program_us
        self._t_program_xfer_us = latency.nand_program_xfer_us
        self._t_read_us = latency.nand_read_us
        self._t_read_xfer_us = latency.nand_read_xfer_us
        self._t_erase_us = latency.nand_erase_us

    @property
    def injector(self) -> FaultInjector | None:
        """The attached fault injector (None on a perfect device)."""
        return self._injector

    # --- counters exposed to benches ---------------------------------------

    @property
    def page_programs(self) -> int:
        """NAND page write I/O count — the paper's core WAF metric."""
        return self._c_page_programs.value

    @property
    def page_reads(self) -> int:
        return self._c_page_reads.value

    @property
    def block_erases(self) -> int:
        return self._c_block_erases.value

    @property
    def bytes_programmed(self) -> int:
        return self._c_bytes_programmed.value

    def erase_count(self, block_index: int) -> int:
        return self._erase_counts.get(block_index, 0)

    # --- deferred booking (pipelined command execution) ---------------------

    def begin_deferred(self) -> None:
        """Start booking NAND time without advancing the clock.

        Nested calls stack; :meth:`end_deferred` must match. While deferred,
        each op still starts no earlier than its resources are free, but
        the host clock stays put — the caller collects the horizon from
        :meth:`end_deferred` and delivers it as the command's finish time.
        """
        if self._deferred == 0:
            self._deferred_end_us = self.clock.now_us
        self._deferred += 1

    def end_deferred(self) -> float:
        """Close a deferred window; returns the latest booked end time."""
        if self._deferred <= 0:
            raise NandError("end_deferred without begin_deferred")
        self._deferred -= 1
        return self._deferred_end_us

    def _settle(self, end_us: float) -> None:
        """Account one booked interval: jump the clock (sync) or widen the
        deferred horizon (pipelined)."""
        if self._deferred:
            if end_us > self._deferred_end_us:
                self._deferred_end_us = end_us
        else:
            self.clock.advance_to(end_us)

    # --- deferred reads (pipelined GET execution) ----------------------------

    def begin_deferred_reads(self) -> None:
        """Let :meth:`read` book instead of wait, inside a deferred window.

        By default reads stay synchronous even while deferred — most
        callers (recovery scans, GC relocation, compaction) consume the
        bytes immediately, so the firmware genuinely waits. A pipelined
        RETRIEVE instead opens this window around its index probe + vLog
        read: each read books on the timeline and only pushes the command's
        finish horizon. Reads *within* the window chain (the probe's result
        addresses the value read), so per-command ordering is preserved
        while reads of different in-flight commands overlap across ways.
        """
        self._defer_reads += 1
        self._read_chain_us = self.clock.now_us

    def end_deferred_reads(self) -> None:
        """Close the window opened by :meth:`begin_deferred_reads`."""
        if self._defer_reads <= 0:
            raise NandError("end_deferred_reads without begin_deferred_reads")
        self._defer_reads -= 1

    def set_read_coalescer(self, coalescer) -> None:
        """Attach (or detach, with None) the batch's shared-page window."""
        self._coalescer = coalescer

    def settle_read_dependency(self, ready_us: float) -> None:
        """The caller consumes data whose NAND fill completes at ``ready_us``
        (a cache hit on a page another in-flight command is still reading)."""
        if self._defer_reads and self._deferred:
            if ready_us > self._read_chain_us:
                self._read_chain_us = ready_us
            self._settle(ready_us)
        elif ready_us > self.clock.now_us:
            self.clock.advance_to(ready_us)

    def _read_deferred(self, ppn: int, data: bytes) -> bytes:
        """Book (or coalesce) one page read inside a deferred-read window."""
        issue = self._read_chain_us
        now = self.clock.now_us
        if issue < now:
            issue = now
        coal = self._coalescer
        if coal is not None:
            shared_end = coal.window.get(ppn)
            if shared_end is not None and shared_end > issue:
                # An in-flight sense of this page serves this command too:
                # no new booking — one bus slice, N memcpys.
                coal.coalesced += 1
                if self._c_coalesced_reads is None:
                    self._c_coalesced_reads = self.metrics.counter(
                        "coalesced_reads"
                    )
                self._c_coalesced_reads.add(1)
                if shared_end > self._read_chain_us:
                    self._read_chain_us = shared_end
                self.last_read_end_us = shared_end
                self._settle(shared_end)
                if self._tracer is not None:
                    self._tracer.span(
                        "nand", "read_coalesced", issue, shared_end,
                        phase="nand", phase_us=0.0, ppn=ppn,
                    )
                return data
        self._c_page_reads.add(1)
        way = ppn // self._pages_per_way
        start, end = self.timeline.book_read(
            way, issue, self._t_read_us, self._t_read_xfer_us
        )
        if coal is not None:
            coal.window[ppn] = end
            coal.sensed += 1
        self._read_chain_us = end
        self.last_read_end_us = end
        self._settle(end)
        if self._tracer is not None:
            # phase_us 0: the clock stays put; the wait is attributed at
            # completion delivery (the driver's nand_wait span).
            self._tracer.span(
                "nand", "read", start, end, phase="nand",
                phase_us=0.0, resource=f"way{way}", ppn=ppn,
            )
        return data

    # --- operations ----------------------------------------------------------

    def program(self, ppn: int, data: bytes, oob: PageOOB | None = None) -> None:
        """Program one page. ``data`` may be short; it is page-padded.

        ``oob`` is written atomically with the page (except when a power
        cut tears the program, in which case the stored CRC reflects only
        the partially programmed payload and can never match it).
        """
        geo = self.geometry
        if not 0 <= ppn < geo.total_pages:
            raise NandError(f"program PPN {ppn} outside module")
        if len(data) > geo.page_size:
            raise NandError(
                f"program of {len(data)} bytes exceeds page size {geo.page_size}"
            )
        if ppn in self._pages:
            raise ProgramError(f"PPN {ppn} already programmed since last erase")
        block = geo.block_of(ppn)
        in_block = ppn - geo.first_ppn_of_block(block)
        expected = self._next_page.get(block, 0)
        if in_block != expected:
            raise ProgramError(
                f"block {block}: pages must be programmed in order "
                f"(expected page {expected}, got {in_block})"
            )
        if self._injector is not None:
            self._power_gate(self._injector)
        self._next_page[block] = in_block + 1
        if self._injector is not None:
            fault = self._injector.program_fault(block)
            if fault is not None:
                # The page is consumed (pointer advanced) but holds nothing:
                # real NAND burns the page and reports failure after tPROG,
                # and the way is occupied for the full attempt.
                self._c_program_failures.add(1)
                way = ppn // self._pages_per_way
                t0 = self.clock.now_us
                start, end = self.timeline.book_program(
                    way, t0, self._t_program_us, self._t_program_xfer_us
                )
                self._settle(end)
                if self._tracer is not None:
                    self._tracer.span(
                        "nand", "program_failed", start, end, phase="nand",
                        phase_us=self.clock.now_us - t0,
                        resource=f"way{way}", ppn=ppn, fault=fault,
                    )
                raise ProgramFailedError(
                    f"program of PPN {ppn} failed ({fault})",
                    ppn=ppn,
                    block=block,
                    permanent=fault == "permanent",
                )
        if len(data) < geo.page_size:
            data = data + b"\x00" * (geo.page_size - len(data))
        if self._injector is not None and self._injector.power_enabled:
            way = ppn // self._pages_per_way
            t0 = self.clock.now_us
            start, end = self.timeline.book_program(
                way, t0, self._t_program_us, self._t_program_xfer_us
            )
            cut = self._injector.power_cut_during(start, end)
            if cut is not None:
                self._tear_page(ppn, block, data, oob, cut)
            self._store_page(ppn, block, data, oob, geo)
            self._settle(end)
            if self._tracer is not None:
                self._tracer.span(
                    "nand", "program", start, end, phase="nand",
                    phase_us=self.clock.now_us - t0,
                    resource=f"way{way}", ppn=ppn,
                )
            return
        self._store_page(ppn, block, data, oob, geo)
        tracer = self._tracer
        if tracer is None:
            _, end = self.timeline.book_program(
                ppn // self._pages_per_way,
                self.clock.now_us,
                self._t_program_us,
                self._t_program_xfer_us,
            )
            self._settle(end)
            return
        way = ppn // self._pages_per_way
        t0 = self.clock.now_us
        start, end = self.timeline.book_program(
            way, t0, self._t_program_us, self._t_program_xfer_us
        )
        self._settle(end)
        # phase_us is the *clock* delta, not the booked duration: inside a
        # deferred window the clock stays put and the wait is attributed at
        # completion delivery instead (driver's nand_wait span).
        tracer.span(
            "nand", "program", start, end, phase="nand",
            phase_us=self.clock.now_us - t0, resource=f"way{way}", ppn=ppn,
        )

    def _store_page(self, ppn, block, data, oob, geo) -> None:
        self._pages[ppn] = bytes(data)
        if oob is not None:
            self._oob[ppn] = oob
        programmed = self._programmed_by_block.get(block)
        if programmed is None:
            programmed = self._programmed_by_block[block] = set()
        programmed.add(ppn)
        self._c_page_programs.add(1)
        self._c_bytes_programmed.add(geo.page_size)

    def _tear_page(self, ppn, block, data, oob, cut_us) -> None:
        """A power cut landed inside this program window: the page is
        consumed and holds a *torn* payload — its stored OOB CRC covers only
        the bits that made it, so it can never match the payload — and the
        module freezes. Raises :class:`PowerLossError`."""
        self._pages[ppn] = bytes(data)
        partial = data[: max(1, self.geometry.page_size // 2)]
        if oob is not None:
            self._oob[ppn] = PageOOB(
                lpn=oob.lpn, seq=oob.seq, crc=page_crc(partial),
                torn=True, meta=oob.meta,
            )
        programmed = self._programmed_by_block.get(block)
        if programmed is None:
            programmed = self._programmed_by_block[block] = set()
        programmed.add(ppn)
        self._injector.metrics.counter("torn_pages").add(1)
        self.clock.advance_to(cut_us)
        raise PowerLossError(
            f"power cut at {cut_us:.3f} us tore PPN {ppn}", cut_us=cut_us
        )

    def _power_gate(self, inj: FaultInjector) -> None:
        """Freeze every media op once power is gone (or a scheduled cut's
        timestamp has passed)."""
        if inj.power_enabled and inj.power_down(self.clock.now_us):
            raise PowerLossError(
                f"device is powered down (cut at {inj.last_cut_us:.3f} us)",
                cut_us=inj.last_cut_us,
            )

    # --- OOB / recovery access ----------------------------------------------

    def page_oob(self, ppn: int) -> PageOOB | None:
        """The OOB metadata of ``ppn`` (None if programmed without OOB)."""
        return self._oob.get(ppn)

    def programmed_ppns(self):
        """All currently programmed PPNs, ascending (for recovery scans)."""
        return sorted(self._pages)

    def scan_read(self, ppn: int) -> tuple[bytes, PageOOB | None]:
        """Recovery-mode page read: payload + OOB in one access.

        Books a normal read on the timeline (mount-time scans are not free)
        but bypasses the wear/bit-flip model — recovery judges page
        integrity by the OOB CRC, not by ECC, so injected flips would only
        double-count. Never raises for torn pages; the caller inspects the
        OOB and decides.
        """
        if not 0 <= ppn < self.geometry.total_pages:
            raise NandError(f"scan_read PPN {ppn} outside module")
        try:
            data = self._pages[ppn]
        except KeyError:
            raise NandError(f"scan_read of never-programmed PPN {ppn}") from None
        self._c_page_reads.add(1)
        way = ppn // self._pages_per_way
        t0 = self.clock.now_us
        start, end = self.timeline.book_read(
            way, t0, self._t_read_us, self._t_read_xfer_us
        )
        self.clock.advance_to(end)
        if self._tracer is not None:
            self._tracer.span(
                "nand", "scan_read", start, end, phase="nand",
                phase_us=self.clock.now_us - t0, resource=f"way{way}", ppn=ppn,
            )
        return data, self._oob.get(ppn)

    def read(self, ppn: int) -> bytes:
        """Read one programmed page (full page size).

        With an injector attached, ``last_read_bitflips`` reports how many
        bits this read returned flipped. The *returned* bytes stay pristine
        — the FTL's ECC layer either corrects (flips within ECC strength,
        back to exactly these bytes) or refuses to return data at all
        (:class:`ReadUncorrectableError`), so corrupted bytes never
        propagate silently.
        """
        if not 0 <= ppn < self.geometry.total_pages:
            raise NandError(f"read PPN {ppn} outside module")
        try:
            data = self._pages[ppn]
        except KeyError:
            raise NandError(f"read of never-programmed PPN {ppn}") from None
        if self._defer_reads and self._deferred and self._injector is None:
            return self._read_deferred(ppn, data)
        if self._injector is not None:
            self._power_gate(self._injector)
            block = self.geometry.block_of(ppn)
            flips = self._injector.read_bitflips(block, self.erase_count(block))
            self.last_read_bitflips = flips
            if flips:
                self._c_read_bitflips.add(flips)
        self._c_page_reads.add(1)
        way = ppn // self._pages_per_way
        t0 = self.clock.now_us
        start, end = self.timeline.book_read(
            way, t0, self._t_read_us, self._t_read_xfer_us
        )
        # Outside a deferred-*read* window, reads stay synchronous even
        # inside a deferred (program) window: the caller consumes the
        # returned bytes immediately, so the firmware genuinely waits for
        # them (and for the way, if a deferred program holds it).
        self.last_read_end_us = end
        self.clock.advance_to(end)
        if self._tracer is not None:
            self._tracer.span(
                "nand", "read", start, end, phase="nand",
                phase_us=self.clock.now_us - t0, resource=f"way{way}", ppn=ppn,
            )
        return data

    def is_programmed(self, ppn: int) -> bool:
        return ppn in self._pages

    def erase_block(self, block_index: int) -> None:
        """Erase a whole block, resetting its program pointer."""
        geo = self.geometry
        if not 0 <= block_index < geo.total_blocks:
            raise NandError(f"erase of block {block_index} outside module")
        way = block_index // geo.blocks_per_way
        if self._injector is not None:
            self._power_gate(self._injector)
        if self._injector is not None and self._injector.erase_fault(block_index):
            # A failed erase still holds the die for the full tBERS.
            self._c_erase_failures.add(1)
            t0 = self.clock.now_us
            start, end = self.timeline.book_erase(way, t0, self._t_erase_us)
            self._settle(end)
            if self._tracer is not None:
                self._tracer.span(
                    "nand", "erase_failed", start, end, phase="nand",
                    phase_us=self.clock.now_us - t0,
                    resource=f"way{way}", block=block_index,
                )
            raise EraseFailedError(
                f"erase of block {block_index} failed", block=block_index
            )
        programmed = self._programmed_by_block.pop(block_index, None)
        if programmed:
            pages = self._pages
            oob = self._oob
            for ppn in programmed:
                del pages[ppn]
                oob.pop(ppn, None)
        self._next_page[block_index] = 0
        self._erase_counts[block_index] = self._erase_counts.get(block_index, 0) + 1
        self._c_block_erases.add(1)
        t0 = self.clock.now_us
        start, end = self.timeline.book_erase(way, t0, self._t_erase_us)
        self._settle(end)
        if self._tracer is not None:
            self._tracer.span(
                "nand", "erase", start, end, phase="nand",
                phase_us=self.clock.now_us - t0,
                resource=f"way{way}", block=block_index,
            )

    def pages_programmed_in_block(self, block_index: int) -> int:
        return self._next_page.get(block_index, 0)

    def reset_metrics(self) -> None:
        self.metrics.reset()
