"""The NAND flash array: program / read / erase with real constraints.

NAND semantics enforced here (violations raise, they never silently pass):

* a page is programmed at most once between erases (:class:`ProgramError`);
* pages within a block are programmed in ascending order;
* reads of never-programmed pages fail (no hidden zero pages);
* erase works on whole blocks only.

With a :class:`~repro.faults.FaultInjector` attached, program/read/erase
additionally consult the injector: failed programs consume their page and
raise :class:`ProgramFailedError` after the full tPROG (real NAND reports
failure only after the attempt), failed erases raise
:class:`EraseFailedError`, and reads record injected bit flips in
``last_read_bitflips`` for the FTL's ECC model to judge. Without an
injector every hook is a single ``is None`` check.

Page content is stored sparsely (dict keyed by PPN) so a module with a
realistic logical capacity costs memory proportional to the data actually
written, not the module size. Every program/read/erase advances the
simulated clock and bumps the counters the paper's Figures 4, 11 and 12(c)
are built from.
"""

from __future__ import annotations

from repro.errors import EraseFailedError, NandError, ProgramError, ProgramFailedError
from repro.faults.injector import FaultInjector
from repro.nand.geometry import NandGeometry
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.sim.stats import MetricSet


class NandFlash:
    """A flash module with per-block program/erase bookkeeping."""

    def __init__(
        self,
        geometry: NandGeometry,
        clock: SimClock,
        latency: LatencyModel,
        injector: FaultInjector | None = None,
    ) -> None:
        self.geometry = geometry
        self.clock = clock
        self.latency = latency
        self._injector = injector
        #: Bit flips the most recent read returned (ECC input for the FTL).
        self.last_read_bitflips = 0
        self._pages: dict[int, bytes] = {}
        #: Next programmable page index per block (in-block program order).
        self._next_page: dict[int, int] = {}
        self._erase_counts: dict[int, int] = {}
        self.metrics = MetricSet("nand")
        # Pre-create so snapshots always include them.
        self.metrics.counter("page_programs")
        self.metrics.counter("page_reads")
        self.metrics.counter("block_erases")
        self.metrics.counter("bytes_programmed")
        if injector is not None:
            self.metrics.counter("program_failures")
            self.metrics.counter("erase_failures")
            self.metrics.counter("read_bitflips")

    @property
    def injector(self) -> FaultInjector | None:
        """The attached fault injector (None on a perfect device)."""
        return self._injector

    # --- counters exposed to benches ---------------------------------------

    @property
    def page_programs(self) -> int:
        """NAND page write I/O count — the paper's core WAF metric."""
        return self.metrics.counter("page_programs").value

    @property
    def page_reads(self) -> int:
        return self.metrics.counter("page_reads").value

    @property
    def block_erases(self) -> int:
        return self.metrics.counter("block_erases").value

    @property
    def bytes_programmed(self) -> int:
        return self.metrics.counter("bytes_programmed").value

    def erase_count(self, block_index: int) -> int:
        return self._erase_counts.get(block_index, 0)

    # --- operations ----------------------------------------------------------

    def program(self, ppn: int, data: bytes) -> None:
        """Program one page. ``data`` may be short; it is page-padded."""
        geo = self.geometry
        if not 0 <= ppn < geo.total_pages:
            raise NandError(f"program PPN {ppn} outside module")
        if len(data) > geo.page_size:
            raise NandError(
                f"program of {len(data)} bytes exceeds page size {geo.page_size}"
            )
        if ppn in self._pages:
            raise ProgramError(f"PPN {ppn} already programmed since last erase")
        block = geo.block_of(ppn)
        in_block = ppn - geo.first_ppn_of_block(block)
        expected = self._next_page.get(block, 0)
        if in_block != expected:
            raise ProgramError(
                f"block {block}: pages must be programmed in order "
                f"(expected page {expected}, got {in_block})"
            )
        self._next_page[block] = in_block + 1
        if self._injector is not None:
            fault = self._injector.program_fault(block)
            if fault is not None:
                # The page is consumed (pointer advanced) but holds nothing:
                # real NAND burns the page and reports failure after tPROG.
                self.metrics.counter("program_failures").add(1)
                self.clock.advance(self.latency.nand_program_us)
                raise ProgramFailedError(
                    f"program of PPN {ppn} failed ({fault})",
                    ppn=ppn,
                    block=block,
                    permanent=fault == "permanent",
                )
        if len(data) < geo.page_size:
            data = data + b"\x00" * (geo.page_size - len(data))
        self._pages[ppn] = bytes(data)
        self.metrics.counter("page_programs").add(1)
        self.metrics.counter("bytes_programmed").add(geo.page_size)
        self.clock.advance(self.latency.nand_program_us)

    def read(self, ppn: int) -> bytes:
        """Read one programmed page (full page size).

        With an injector attached, ``last_read_bitflips`` reports how many
        bits this read returned flipped. The *returned* bytes stay pristine
        — the FTL's ECC layer either corrects (flips within ECC strength,
        back to exactly these bytes) or refuses to return data at all
        (:class:`ReadUncorrectableError`), so corrupted bytes never
        propagate silently.
        """
        if not 0 <= ppn < self.geometry.total_pages:
            raise NandError(f"read PPN {ppn} outside module")
        try:
            data = self._pages[ppn]
        except KeyError:
            raise NandError(f"read of never-programmed PPN {ppn}") from None
        if self._injector is not None:
            block = self.geometry.block_of(ppn)
            flips = self._injector.read_bitflips(block, self.erase_count(block))
            self.last_read_bitflips = flips
            if flips:
                self.metrics.counter("read_bitflips").add(flips)
        self.metrics.counter("page_reads").add(1)
        self.clock.advance(self.latency.nand_read_us)
        return data

    def is_programmed(self, ppn: int) -> bool:
        return ppn in self._pages

    def erase_block(self, block_index: int) -> None:
        """Erase a whole block, resetting its program pointer."""
        geo = self.geometry
        if not 0 <= block_index < geo.total_blocks:
            raise NandError(f"erase of block {block_index} outside module")
        if self._injector is not None and self._injector.erase_fault(block_index):
            self.metrics.counter("erase_failures").add(1)
            self.clock.advance(self.latency.nand_erase_us)
            raise EraseFailedError(
                f"erase of block {block_index} failed", block=block_index
            )
        first = geo.first_ppn_of_block(block_index)
        for ppn in range(first, first + geo.pages_per_block):
            self._pages.pop(ppn, None)
        self._next_page[block_index] = 0
        self._erase_counts[block_index] = self._erase_counts.get(block_index, 0) + 1
        self.metrics.counter("block_erases").add(1)
        self.clock.advance(self.latency.nand_erase_us)

    def pages_programmed_in_block(self, block_index: int) -> int:
        return self._next_page.get(block_index, 0)

    def reset_metrics(self) -> None:
        self.metrics.reset()
