"""Greedy garbage collection.

Classic greedy victim selection: collect the fully-programmed block with
the fewest valid pages until free space is back above the watermark. The
paper's experiments mostly append (vLog) so GC pressure is low, but
compaction invalidates old SSTable pages, and a store run long enough will
wrap the module — the simulator must survive that, not just the happy path.
"""

from __future__ import annotations

from repro.errors import FTLError
from repro.nand.ftl import PageMappedFTL
from repro.sim.stats import MetricSet


class GreedyGarbageCollector:
    """Frees blocks greedily until the FTL is above its reserve watermark."""

    def __init__(self, ftl: PageMappedFTL, batch_blocks: int = 4) -> None:
        if batch_blocks < 1:
            raise FTLError(f"batch_blocks must be >= 1, got {batch_blocks}")
        self.ftl = ftl
        self.batch_blocks = batch_blocks
        self.metrics = MetricSet("gc")
        self.metrics.counter("collections")
        self.metrics.counter("blocks_reclaimed")
        self.metrics.counter("pages_relocated")

    # Attribute-style accessors kept for callers that predate the MetricSet.

    @property
    def collections(self) -> int:
        return self.metrics.counter("collections").value

    @property
    def blocks_reclaimed(self) -> int:
        return self.metrics.counter("blocks_reclaimed").value

    @property
    def pages_relocated(self) -> int:
        return self.metrics.counter("pages_relocated").value

    def collect(self) -> int:
        """Run one GC round; returns blocks reclaimed."""
        self.metrics.counter("collections").add(1)
        reclaimed = 0
        target = self.ftl.gc_reserve_blocks + self.batch_blocks
        candidates = self.ftl.victim_candidates()
        for block in candidates:
            if self.ftl.free_block_count >= target:
                break
            geo = self.ftl.flash.geometry
            valid = self.ftl.valid_pages_in_block(block)
            if valid >= geo.pages_per_block:
                # Nothing reclaimable anywhere colder than this: every
                # remaining candidate is fully valid too (sorted order).
                break
            self.metrics.counter("pages_relocated").add(self.ftl.relocate_block(block))
            self.metrics.counter("blocks_reclaimed").add(1)
            reclaimed += 1
        return reclaimed
