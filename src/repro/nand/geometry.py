"""NAND geometry: channels × ways × blocks × pages.

The paper's platform (Table 1) is a 1 TB module with 4 channels and 8 ways
and 16 KiB pages. The default geometry here matches the channel/way/page
shape; capacity is configurable (benches use a smaller module since the
workloads touch far less than 1 TB, and flash content is stored sparsely
anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, NandError
from repro.units import DEFAULT_NAND_PAGE_SIZE, GIB


@dataclass(frozen=True)
class PageAddress:
    """Physical page coordinates."""

    channel: int
    way: int
    block: int
    page: int


@dataclass(frozen=True)
class NandGeometry:
    """Static flash module shape; all addressing helpers live here.

    Physical page numbers (PPNs) are laid out *page-major within block,
    block-major within way, way-major within channel*, so consecutive PPNs
    within a block are consecutive programmable pages — matching the NAND
    constraint that pages inside a block are programmed in order.
    """

    channels: int = 4
    ways_per_channel: int = 8
    blocks_per_way: int = 256
    pages_per_block: int = 256
    page_size: int = DEFAULT_NAND_PAGE_SIZE

    def __post_init__(self) -> None:
        for name in ("channels", "ways_per_channel", "blocks_per_way",
                     "pages_per_block", "page_size"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"NandGeometry.{name} must be positive")

    # --- capacity -----------------------------------------------------------

    @property
    def total_ways(self) -> int:
        return self.channels * self.ways_per_channel

    @property
    def total_blocks(self) -> int:
        return self.total_ways * self.blocks_per_way

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size

    # --- addressing ---------------------------------------------------------

    def ppn(self, addr: PageAddress) -> int:
        """Flatten coordinates into a physical page number."""
        self.validate(addr)
        way_index = addr.channel * self.ways_per_channel + addr.way
        block_index = way_index * self.blocks_per_way + addr.block
        return block_index * self.pages_per_block + addr.page

    def decompose(self, ppn: int) -> PageAddress:
        """Inverse of :meth:`ppn`."""
        if not 0 <= ppn < self.total_pages:
            raise NandError(f"PPN {ppn} outside module of {self.total_pages} pages")
        block_index, page = divmod(ppn, self.pages_per_block)
        way_index, block = divmod(block_index, self.blocks_per_way)
        channel, way = divmod(way_index, self.ways_per_channel)
        return PageAddress(channel=channel, way=way, block=block, page=page)

    def block_of(self, ppn: int) -> int:
        """Global block index containing ``ppn``."""
        if not 0 <= ppn < self.total_pages:
            raise NandError(f"PPN {ppn} outside module")
        return ppn // self.pages_per_block

    def first_ppn_of_block(self, block_index: int) -> int:
        if not 0 <= block_index < self.total_blocks:
            raise NandError(f"block {block_index} outside module")
        return block_index * self.pages_per_block

    def validate(self, addr: PageAddress) -> None:
        if not 0 <= addr.channel < self.channels:
            raise NandError(f"channel {addr.channel} out of range")
        if not 0 <= addr.way < self.ways_per_channel:
            raise NandError(f"way {addr.way} out of range")
        if not 0 <= addr.block < self.blocks_per_way:
            raise NandError(f"block {addr.block} out of range")
        if not 0 <= addr.page < self.pages_per_block:
            raise NandError(f"page {addr.page} out of range")


#: Table 1 shape at simulation-friendly capacity (default: 8 GiB module).
def default_geometry(
    capacity_bytes: int = 8 * GIB,
    channels: int | None = None,
    ways_per_channel: int | None = None,
) -> NandGeometry:
    """Geometry with the paper's page/block shape at a given capacity.

    ``channels``/``ways_per_channel`` default to the paper's 4 x 8; pass
    other counts (e.g. from ``BandSlimConfig.nand_channels``/``nand_ways``)
    to study parallelism scaling. Capacity is preserved: fewer ways get
    proportionally more blocks each.
    """
    base = NandGeometry(
        channels=channels if channels is not None else 4,
        ways_per_channel=ways_per_channel if ways_per_channel is not None else 8,
    )
    per_way_bytes = capacity_bytes // base.total_ways
    blocks_per_way = max(1, per_way_bytes // base.block_size)
    return NandGeometry(
        channels=base.channels,
        ways_per_channel=base.ways_per_channel,
        blocks_per_way=blocks_per_way,
        pages_per_block=base.pages_per_block,
        page_size=base.page_size,
    )
