"""Page-mapped Flash Translation Layer.

The vLog and the LSM-tree write *logical* NAND pages (paper §2.1: "it fills
logical NAND pages which are mapped to physical NAND pages by the FTL").
This FTL provides that mapping: logical page number (LPN) → physical page
number (PPN), with out-of-place updates, per-block validity tracking for
garbage collection, and round-robin allocation across ways so writes stripe
over the module's channels/ways like real firmware.

With a fault injector attached the FTL is also the recovery layer:

* **program recovery** — a transient program failure burns the page and
  retries on the next free one; a permanent failure retires the block
  (valid pages relocated, block pulled from the free pool) before retrying;
* **ECC + read-retry** — reads whose bit flips are within
  ``ecc_correctable_bits`` are corrected and counted; beyond that the read
  is retried up to ``read_retry_limit`` times before
  :class:`ReadUncorrectableError`; a page that needed retries is scrubbed
  (relocated) so it does not degrade further;
* **bad-block pool** — retired blocks come out of a bounded spare pool;
  exhausting it raises :class:`BadBlockError` (device end-of-life).
"""

from __future__ import annotations

from collections import deque

from repro.errors import (
    BadBlockError,
    EraseFailedError,
    FTLError,
    ProgramFailedError,
    ReadUncorrectableError,
)
from repro.nand.flash import NandFlash, PageOOB, page_crc
from repro.sim.stats import MetricSet


class PageMappedFTL:
    """LPN→PPN mapping with validity bookkeeping, GC and media recovery."""

    def __init__(
        self,
        flash: NandFlash,
        gc_reserve_blocks: int | None = None,
        *,
        ecc_correctable_bits: int = 8,
        read_retry_limit: int = 3,
        program_retry_limit: int = 4,
        spare_blocks: int | None = None,
        tracer=None,
        journal=None,
    ) -> None:
        self.flash = flash
        #: Durability journal (crash-consistency mode). When present every
        #: program carries OOB metadata (LPN, monotonic sequence number,
        #: payload CRC, vlog value-directory entries) so remount can
        #: rebuild this in-RAM mapping from media alone.
        self._journal = journal
        self._seq = 0
        #: Optional repro.sim.trace.Tracer; recovery events become instants.
        self._tracer = tracer
        geo = flash.geometry
        #: Blocks kept in reserve as GC headroom (over-provisioning).
        self.gc_reserve_blocks = (
            gc_reserve_blocks
            if gc_reserve_blocks is not None
            else max(2, geo.total_blocks // 32)
        )
        if self.gc_reserve_blocks >= geo.total_blocks:
            raise FTLError(
                f"GC reserve {self.gc_reserve_blocks} >= module blocks "
                f"{geo.total_blocks}"
            )
        if ecc_correctable_bits < 0:
            raise FTLError(f"ecc_correctable_bits must be >= 0, got {ecc_correctable_bits}")
        if read_retry_limit < 1:
            raise FTLError(f"read_retry_limit must be >= 1, got {read_retry_limit}")
        if program_retry_limit < 0:
            raise FTLError(f"program_retry_limit must be >= 0, got {program_retry_limit}")
        #: ECC strength: correctable bit flips per page read.
        self.ecc_correctable_bits = ecc_correctable_bits
        #: Read-retry attempts before a read is declared uncorrectable.
        self.read_retry_limit = read_retry_limit
        #: Fresh pages tried before a program is declared unrecoverable.
        self.program_retry_limit = program_retry_limit
        #: Bad blocks tolerated before the device is end-of-life. The pool
        #: lives inside the GC reserve headroom, so retiring a block never
        #: strands logical capacity.
        self.spare_blocks = (
            spare_blocks if spare_blocks is not None else max(1, geo.total_blocks // 64)
        )
        self._map: dict[int, int] = {}            # lpn -> ppn
        self._reverse: dict[int, int] = {}        # ppn -> lpn
        self._valid_per_block: dict[int, int] = {}
        self._bad_blocks: set[int] = set()
        self._free_blocks: dict[int, deque[int]] = {}
        self._active_block: dict[int, int | None] = {}
        for way in range(geo.total_ways):
            blocks = deque(
                way * geo.blocks_per_way + b for b in range(geo.blocks_per_way)
            )
            self._free_blocks[way] = blocks
            self._active_block[way] = None
        self._rr_way = 0
        # Free-block low-water mark (crashcheck asserts the device never
        # silently exhausts its spare headroom); plain ints, zero-cost.
        self._free_count = geo.total_blocks
        self._free_low_water = geo.total_blocks
        self._gc = None  # set via set_gc(); optional
        self._in_gc = False
        self._in_scrub = False
        self._cache = None  # set via attach_read_cache(); optional
        self._cache_hit_us = 0.0
        self._injector = flash.injector
        self.metrics = MetricSet("ftl")
        # Hot-path counters cached as attributes; snapshot() stays string-keyed.
        self._c_logical_writes = self.metrics.counter("logical_writes")
        self._c_relocations = self.metrics.counter("relocations")
        if self._injector is not None:
            self.metrics.counter("program_retries")
            self.metrics.counter("bad_blocks_retired")
            self.metrics.counter("ecc_corrected_bits")
            self.metrics.counter("read_retries")
            self.metrics.counter("reads_relocated")
            self.metrics.counter("uncorrectable_reads")

    # --- wiring -----------------------------------------------------------

    def set_gc(self, gc) -> None:
        """Attach a garbage collector consulted when free space runs low."""
        self._gc = gc

    def attach_journal(self, journal) -> None:
        """Enable crash-consistency OOB stamping (before any write)."""
        if self._map:
            raise FTLError("cannot attach a journal to a written FTL")
        self._journal = journal

    # --- queries -----------------------------------------------------------

    @property
    def free_block_count(self) -> int:
        return sum(len(q) for q in self._free_blocks.values())

    @property
    def bad_block_count(self) -> int:
        return len(self._bad_blocks)

    @property
    def free_block_low_water(self) -> int:
        """Fewest simultaneously-free blocks ever seen on this mount."""
        return self._free_low_water

    def is_bad_block(self, block_index: int) -> bool:
        return block_index in self._bad_blocks

    @property
    def mapped_pages(self) -> int:
        return len(self._map)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self._map

    def ppn_of(self, lpn: int) -> int:
        try:
            return self._map[lpn]
        except KeyError:
            raise FTLError(f"LPN {lpn} is not mapped") from None

    def lpn_of(self, ppn: int) -> int | None:
        """The LPN a physical page backs, or None if the page is invalid."""
        return self._reverse.get(ppn)

    def valid_pages_in_block(self, block_index: int) -> int:
        return self._valid_per_block.get(block_index, 0)

    # --- data path -----------------------------------------------------------

    def attach_read_cache(self, cache, hit_cost_us: float = 2.0) -> None:
        """Serve repeated reads of a logical page from device DRAM."""
        self._cache = cache
        self._cache_hit_us = hit_cost_us

    def write(self, lpn: int, data: bytes) -> int:
        """Write a logical page out-of-place; returns the new PPN."""
        if lpn < 0:
            raise FTLError(f"negative LPN {lpn}")
        self._maybe_collect()
        if self._journal is None:
            ppn = self._program_page(data)
        else:
            ppn = self._program_page(
                data, lpn=lpn, meta=self._journal.pop_meta(lpn)
            )
        self._invalidate_lpn(lpn)
        self._map[lpn] = ppn
        self._reverse[ppn] = lpn
        block = self.flash.geometry.block_of(ppn)
        self._valid_per_block[block] = self._valid_per_block.get(block, 0) + 1
        self._c_logical_writes.add(1)
        if self._cache is not None:
            self._cache.invalidate(lpn)
        return ppn

    def write_many(self, pages) -> list[int]:
        """Batched :meth:`write`: one call for a run of logical pages.

        ``pages`` is an iterable of ``(lpn, data)`` in program order. The
        per-page sequence (GC check, program, map/validity update, cache
        invalidation) is exactly :meth:`write`'s, with the map/validity
        lookups and metric bound once per batch — callers that produce
        whole runs of pages (write-buffer drain, SSTable serialization)
        skip the per-page attribute churn.
        """
        journal = self._journal
        cache = self._cache
        block_of = self.flash.geometry.block_of
        lpn_map = self._map
        reverse = self._reverse
        valid = self._valid_per_block
        c_writes = self._c_logical_writes
        program = self._program_page
        ppns: list[int] = []
        for lpn, data in pages:
            if lpn < 0:
                raise FTLError(f"negative LPN {lpn}")
            self._maybe_collect()
            if journal is None:
                ppn = program(data)
            else:
                ppn = program(data, lpn=lpn, meta=journal.pop_meta(lpn))
            self._invalidate_lpn(lpn)
            lpn_map[lpn] = ppn
            reverse[ppn] = lpn
            block = block_of(ppn)
            valid[block] = valid.get(block, 0) + 1
            c_writes._value += 1
            if cache is not None:
                cache.invalidate(lpn)
            ppns.append(ppn)
        return ppns

    def read(self, lpn: int) -> bytes:
        cache = self._cache
        if cache is not None:
            entry = cache.lookup(lpn)
            if entry is not None:
                data, ready_us = entry
                flash = self.flash
                if self._tracer is None:
                    flash.clock.advance(self._cache_hit_us)
                else:
                    t0 = flash.clock.now_us
                    flash.clock.advance(self._cache_hit_us)
                    self._tracer.span(
                        "ftl", "cache_hit", t0, flash.clock.now_us,
                        phase="cache", lpn=lpn,
                    )
                if ready_us > flash.clock.now_us:
                    # The fill read is still in flight (deferred batch):
                    # this hit cannot complete before the fill does.
                    flash.settle_read_dependency(ready_us)
                return data
        ppn = self.ppn_of(lpn)
        if self._injector is None:
            data = self.flash.read(ppn)
        else:
            data, retried = self._read_page_ecc(ppn)
            if retried and not self._in_gc and not self._in_scrub:
                # The page needed read-retry to survive: scrub it (move the
                # data to a fresh page) before it degrades past ECC.
                self._in_scrub = True
                try:
                    self._scrub(lpn, data)
                finally:
                    self._in_scrub = False
        if cache is not None:
            cache.put(lpn, data, ready_us=self.flash.last_read_end_us)
        return data

    def trim(self, lpn: int) -> None:
        """Drop a logical page (its physical page becomes GC-reclaimable)."""
        if lpn not in self._map:
            raise FTLError(f"trim of unmapped LPN {lpn}")
        self._invalidate_lpn(lpn)
        if self._cache is not None:
            self._cache.invalidate(lpn)

    # --- internals -----------------------------------------------------------

    def _invalidate_lpn(self, lpn: int) -> None:
        old_ppn = self._map.pop(lpn, None)
        if old_ppn is None:
            return
        del self._reverse[old_ppn]
        block = self.flash.geometry.block_of(old_ppn)
        self._valid_per_block[block] -= 1

    def _allocate_page(self) -> int:
        """Next programmable PPN, round-robin across ways."""
        geo = self.flash.geometry
        for _ in range(geo.total_ways):
            way = self._rr_way
            self._rr_way = (self._rr_way + 1) % geo.total_ways
            active = self._active_block[way]
            if active is not None:
                used = self.flash.pages_programmed_in_block(active)
                if used < geo.pages_per_block:
                    return geo.first_ppn_of_block(active) + used
                self._active_block[way] = None
            if self._free_blocks[way]:
                block = self._free_blocks[way].popleft()
                self._active_block[way] = block
                self._free_count -= 1
                if self._free_count < self._free_low_water:
                    self._free_low_water = self._free_count
                return geo.first_ppn_of_block(block)
        raise FTLError("no free NAND pages in any way (GC exhausted)")

    # --- media recovery -------------------------------------------------------

    def _make_oob(self, lpn: int, data: bytes, meta: tuple) -> PageOOB:
        """OOB block for one program: fresh sequence number + payload CRC
        over the page-padded bytes (what a scan will read back)."""
        self._seq += 1
        page_size = self.flash.geometry.page_size
        if len(data) < page_size:
            data = data + b"\x00" * (page_size - len(data))
        return PageOOB(lpn=lpn, seq=self._seq, crc=page_crc(data), meta=meta)

    def _meta_of(self, ppn: int) -> tuple:
        """Value-directory entries riding ``ppn``'s OOB (for relocation)."""
        oob = self.flash.page_oob(ppn)
        return oob.meta if oob is not None else ()

    def _program_page(self, data: bytes, lpn: int = -1, meta: tuple = ()) -> int:
        """Program ``data`` on the next free page, recovering from failures.

        Transient failures burn the failed page and retry on the next one;
        permanent failures retire the block first. Gives up (and declares
        the device unwritable) after ``program_retry_limit`` retries.
        """
        oob = None if self._journal is None else self._make_oob(lpn, data, meta)
        if self._injector is None:
            ppn = self._allocate_page()
            self.flash.program(ppn, data, oob)
            return ppn
        last: ProgramFailedError | None = None
        for _ in range(self.program_retry_limit + 1):
            ppn = self._allocate_page()
            try:
                self.flash.program(ppn, data, oob)
                return ppn
            except ProgramFailedError as exc:
                last = exc
                if exc.permanent:
                    self._retire_block(exc.block)
                else:
                    self.metrics.counter("program_retries").add(1)
                    if self._tracer is not None:
                        self._tracer.instant(
                            "ftl", "program_retry", block=exc.block
                        )
        raise BadBlockError(
            f"program failed on {self.program_retry_limit + 1} pages in a row"
        ) from last

    def _read_page_ecc(self, ppn: int) -> tuple[bytes, bool]:
        """Read ``ppn`` through the ECC model: (data, needed_retry).

        Flips within ``ecc_correctable_bits`` are corrected in the flash
        controller; beyond that the read is retried (each retry pays a full
        NAND read and re-samples the transient noise) up to
        ``read_retry_limit`` times before the page is declared lost.
        """
        attempts = 0
        while True:
            data = self.flash.read(ppn)
            flips = self.flash.last_read_bitflips
            if flips == 0:
                return data, attempts > 0
            if flips <= self.ecc_correctable_bits:
                self.metrics.counter("ecc_corrected_bits").add(flips)
                return data, attempts > 0
            attempts += 1
            self.metrics.counter("read_retries").add(1)
            if self._tracer is not None:
                self._tracer.instant(
                    "ftl", "read_retry", ppn=ppn, bitflips=flips
                )
            if attempts >= self.read_retry_limit:
                self.metrics.counter("uncorrectable_reads").add(1)
                if self._tracer is not None:
                    self._tracer.instant(
                        "ftl", "read_uncorrectable", ppn=ppn, bitflips=flips
                    )
                raise ReadUncorrectableError(
                    f"PPN {ppn}: {flips} bit flips exceed ECC strength "
                    f"{self.ecc_correctable_bits} after {attempts} read retries",
                    ppn=ppn,
                    bitflips=flips,
                )

    def _remap(self, lpn: int, old_ppn: int, new_ppn: int) -> None:
        """Move ``lpn`` from ``old_ppn`` to ``new_ppn`` (relocation rewire)."""
        geo = self.flash.geometry
        del self._reverse[old_ppn]
        self._valid_per_block[geo.block_of(old_ppn)] -= 1
        self._map[lpn] = new_ppn
        self._reverse[new_ppn] = lpn
        new_block = geo.block_of(new_ppn)
        self._valid_per_block[new_block] = self._valid_per_block.get(new_block, 0) + 1

    def _scrub(self, lpn: int, data: bytes) -> None:
        """Relocate a read-marginal page so the next read starts fresh."""
        old_ppn = self._map.get(lpn)
        if old_ppn is None:
            return
        new_ppn = self._program_page(data, lpn=lpn, meta=self._meta_of(old_ppn))
        self._remap(lpn, old_ppn, new_ppn)
        self.metrics.counter("reads_relocated").add(1)
        if self._tracer is not None:
            self._tracer.instant("ftl", "scrub", lpn=lpn, ppn=new_ppn)

    def _retire_block(self, block: int) -> None:
        """Pull a grown-bad block out of service, relocating its valid data.

        The retired block never rejoins a free list; its live pages move to
        fresh pages via the normal recovery path. Exhausting the spare pool
        raises :class:`BadBlockError` — the device has reached end-of-life.
        """
        if block in self._bad_blocks:
            return
        self._bad_blocks.add(block)
        self.metrics.counter("bad_blocks_retired").add(1)
        if self._tracer is not None:
            self._tracer.instant("ftl", "bad_block_retired", block=block)
        geo = self.flash.geometry
        way = block // geo.blocks_per_way
        try:
            self._free_blocks[way].remove(block)
        except ValueError:
            pass  # not free: active or fully programmed
        else:
            self._free_count -= 1
            if self._free_count < self._free_low_water:
                self._free_low_water = self._free_count
        if self._active_block.get(way) == block:
            self._active_block[way] = None
        if len(self._bad_blocks) > self.spare_blocks:
            raise BadBlockError(
                f"{len(self._bad_blocks)} bad blocks exceed the spare pool "
                f"of {self.spare_blocks}"
            )
        first = geo.first_ppn_of_block(block)
        for ppn in range(first, first + geo.pages_per_block):
            lpn = self._reverse.get(ppn)
            if lpn is None or not self.flash.is_programmed(ppn):
                continue
            data, _ = self._read_page_ecc(ppn)
            new_ppn = self._program_page(data, lpn=lpn, meta=self._meta_of(ppn))
            self._remap(lpn, ppn, new_ppn)
            self._c_relocations.add(1)

    # --- mount-time recovery ---------------------------------------------------

    def adopt_mapping(
        self,
        mapping: dict[int, int],
        bad_blocks=(),
        next_seq: int = 0,
    ) -> None:
        """Rebuild the in-RAM FTL state from a recovery scan.

        ``mapping`` is the lpn→ppn table the OOB scan decided on
        (highest-sequence-number winner per LPN, torn pages excluded);
        ``bad_blocks`` carries the persisted bad-block table across the
        crash; ``next_seq`` is the highest OOB sequence number seen, so new
        programs keep the device-wide ordering monotonic. Free/active block
        state is derived from the flash module's program pointers: empty
        blocks are free, one partial block per way resumes as active, and
        any extra partial blocks are sealed (never programmed further).
        """
        geo = self.flash.geometry
        reverse = {ppn: lpn for lpn, ppn in mapping.items()}
        if len(reverse) != len(mapping):
            raise FTLError("adopt_mapping: one PPN backs two LPNs")
        self._map = dict(mapping)
        self._reverse = reverse
        valid: dict[int, int] = {}
        for ppn in reverse:
            block = geo.block_of(ppn)
            valid[block] = valid.get(block, 0) + 1
        self._valid_per_block = valid
        self._bad_blocks = set(bad_blocks)
        self._seq = next_seq
        self._rr_way = 0
        free_count = 0
        for way in range(geo.total_ways):
            queue = deque()
            self._active_block[way] = None
            for index in range(geo.blocks_per_way):
                block = way * geo.blocks_per_way + index
                if block in self._bad_blocks:
                    continue
                used = self.flash.pages_programmed_in_block(block)
                if used == 0:
                    queue.append(block)
                elif used < geo.pages_per_block and self._active_block[way] is None:
                    self._active_block[way] = block
            self._free_blocks[way] = queue
            free_count += len(queue)
        self._free_count = free_count
        self._free_low_water = free_count
        if self._cache is not None:
            for lpn in list(mapping):
                self._cache.invalidate(lpn)

    def _maybe_collect(self) -> None:
        if self._gc is None or self._in_gc:
            return
        if self.free_block_count <= self.gc_reserve_blocks:
            self._in_gc = True
            try:
                self._gc.collect()
            finally:
                self._in_gc = False

    # --- wear and utilization statistics -----------------------------------------

    def wear_stats(self) -> dict[str, float]:
        """Erase-count distribution across the module (wear-leveling view)."""
        geo = self.flash.geometry
        counts = [self.flash.erase_count(b) for b in range(geo.total_blocks)]
        total = sum(counts)
        mean = total / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return {
            "total_erases": float(total),
            "mean_erases": mean,
            "max_erases": float(max(counts)),
            "min_erases": float(min(counts)),
            "stdev_erases": variance**0.5,
        }

    def way_utilization(self) -> list[int]:
        """Valid pages per way — round-robin striping should keep this flat."""
        geo = self.flash.geometry
        per_way = [0] * geo.total_ways
        for ppn in self._reverse:
            way_index = geo.block_of(ppn) // geo.blocks_per_way
            per_way[way_index] += 1
        return per_way

    # --- GC support API --------------------------------------------------------

    def victim_candidates(self) -> list[int]:
        """Fully-programmed blocks, cheapest-to-collect first.

        A full block still referenced as a way's "active" block is sealed
        in practice (no free pages left), so it is a legitimate victim;
        :meth:`relocate_block` clears the stale active pointer.
        """
        geo = self.flash.geometry
        candidates = [
            block
            for block in range(geo.total_blocks)
            if block not in self._bad_blocks
            and self.flash.pages_programmed_in_block(block) == geo.pages_per_block
        ]
        candidates.sort(key=lambda b: self._valid_per_block.get(b, 0))
        return candidates

    def relocate_block(self, block_index: int) -> int:
        """Move a block's valid pages elsewhere and erase it.

        Returns the number of pages relocated. The freed block rejoins its
        way's free list.
        """
        geo = self.flash.geometry
        if block_index in self._bad_blocks:
            raise FTLError(f"relocating retired bad block {block_index}")
        if self.flash.pages_programmed_in_block(block_index) < geo.pages_per_block:
            raise FTLError(f"relocating block {block_index} that is still open")
        for way, active in self._active_block.items():
            if active == block_index:
                self._active_block[way] = None
        first = geo.first_ppn_of_block(block_index)
        moved = 0
        for ppn in range(first, first + geo.pages_per_block):
            lpn = self._reverse.get(ppn)
            if lpn is None:
                continue
            if self._injector is None:
                data = self.flash.read(ppn)
            else:
                data, _ = self._read_page_ecc(ppn)
            # Rewire the mapping by hand (not via write(): relocation must
            # not re-trigger GC or count as a logical write).
            new_ppn = self._program_page(data, lpn=lpn, meta=self._meta_of(ppn))
            self._remap(lpn, ppn, new_ppn)
            moved += 1
            self._c_relocations.add(1)
        try:
            self.flash.erase_block(block_index)
        except EraseFailedError:
            # Every valid page has already moved; the block just never
            # rejoins the free pool.
            self._retire_block(block_index)
            return moved
        way = block_index // geo.blocks_per_way
        self._free_blocks[way].append(block_index)
        self._free_count += 1
        if self._tracer is not None:
            self._tracer.instant(
                "ftl", "gc_relocate_block", block=block_index, moved=moved
            )
        return moved
