"""Page-mapped Flash Translation Layer.

The vLog and the LSM-tree write *logical* NAND pages (paper §2.1: "it fills
logical NAND pages which are mapped to physical NAND pages by the FTL").
This FTL provides that mapping: logical page number (LPN) → physical page
number (PPN), with out-of-place updates, per-block validity tracking for
garbage collection, and round-robin allocation across ways so writes stripe
over the module's channels/ways like real firmware.
"""

from __future__ import annotations

from collections import deque

from repro.errors import FTLError
from repro.nand.flash import NandFlash
from repro.sim.stats import MetricSet


class PageMappedFTL:
    """LPN→PPN mapping with validity bookkeeping and GC hooks."""

    def __init__(self, flash: NandFlash, gc_reserve_blocks: int | None = None) -> None:
        self.flash = flash
        geo = flash.geometry
        #: Blocks kept in reserve as GC headroom (over-provisioning).
        self.gc_reserve_blocks = (
            gc_reserve_blocks
            if gc_reserve_blocks is not None
            else max(2, geo.total_blocks // 32)
        )
        if self.gc_reserve_blocks >= geo.total_blocks:
            raise FTLError(
                f"GC reserve {self.gc_reserve_blocks} >= module blocks "
                f"{geo.total_blocks}"
            )
        self._map: dict[int, int] = {}            # lpn -> ppn
        self._reverse: dict[int, int] = {}        # ppn -> lpn
        self._valid_per_block: dict[int, int] = {}
        self._free_blocks: dict[int, deque[int]] = {}
        self._active_block: dict[int, int | None] = {}
        for way in range(geo.total_ways):
            blocks = deque(
                way * geo.blocks_per_way + b for b in range(geo.blocks_per_way)
            )
            self._free_blocks[way] = blocks
            self._active_block[way] = None
        self._rr_way = 0
        self._gc = None  # set via set_gc(); optional
        self._in_gc = False
        self._cache = None  # set via attach_read_cache(); optional
        self._cache_hit_us = 0.0
        self.metrics = MetricSet("ftl")
        self.metrics.counter("logical_writes")
        self.metrics.counter("relocations")

    # --- wiring -----------------------------------------------------------

    def set_gc(self, gc) -> None:
        """Attach a garbage collector consulted when free space runs low."""
        self._gc = gc

    # --- queries -----------------------------------------------------------

    @property
    def free_block_count(self) -> int:
        return sum(len(q) for q in self._free_blocks.values())

    @property
    def mapped_pages(self) -> int:
        return len(self._map)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self._map

    def ppn_of(self, lpn: int) -> int:
        try:
            return self._map[lpn]
        except KeyError:
            raise FTLError(f"LPN {lpn} is not mapped") from None

    def lpn_of(self, ppn: int) -> int | None:
        """The LPN a physical page backs, or None if the page is invalid."""
        return self._reverse.get(ppn)

    def valid_pages_in_block(self, block_index: int) -> int:
        return self._valid_per_block.get(block_index, 0)

    # --- data path -----------------------------------------------------------

    def attach_read_cache(self, cache, hit_cost_us: float = 2.0) -> None:
        """Serve repeated reads of a logical page from device DRAM."""
        self._cache = cache
        self._cache_hit_us = hit_cost_us

    def write(self, lpn: int, data: bytes) -> int:
        """Write a logical page out-of-place; returns the new PPN."""
        if lpn < 0:
            raise FTLError(f"negative LPN {lpn}")
        self._maybe_collect()
        ppn = self._allocate_page()
        self.flash.program(ppn, data)
        self._invalidate_lpn(lpn)
        self._map[lpn] = ppn
        self._reverse[ppn] = lpn
        block = self.flash.geometry.block_of(ppn)
        self._valid_per_block[block] = self._valid_per_block.get(block, 0) + 1
        self.metrics.counter("logical_writes").add(1)
        if self._cache is not None:
            self._cache.invalidate(lpn)
        return ppn

    def read(self, lpn: int) -> bytes:
        if self._cache is not None:
            cached = self._cache.get(lpn)
            if cached is not None:
                self.flash.clock.advance(self._cache_hit_us)
                return cached
        data = self.flash.read(self.ppn_of(lpn))
        if self._cache is not None:
            self._cache.put(lpn, data)
        return data

    def trim(self, lpn: int) -> None:
        """Drop a logical page (its physical page becomes GC-reclaimable)."""
        if lpn not in self._map:
            raise FTLError(f"trim of unmapped LPN {lpn}")
        self._invalidate_lpn(lpn)
        if self._cache is not None:
            self._cache.invalidate(lpn)

    # --- internals -----------------------------------------------------------

    def _invalidate_lpn(self, lpn: int) -> None:
        old_ppn = self._map.pop(lpn, None)
        if old_ppn is None:
            return
        del self._reverse[old_ppn]
        block = self.flash.geometry.block_of(old_ppn)
        self._valid_per_block[block] -= 1

    def _allocate_page(self) -> int:
        """Next programmable PPN, round-robin across ways."""
        geo = self.flash.geometry
        for _ in range(geo.total_ways):
            way = self._rr_way
            self._rr_way = (self._rr_way + 1) % geo.total_ways
            active = self._active_block[way]
            if active is not None:
                used = self.flash.pages_programmed_in_block(active)
                if used < geo.pages_per_block:
                    return geo.first_ppn_of_block(active) + used
                self._active_block[way] = None
            if self._free_blocks[way]:
                block = self._free_blocks[way].popleft()
                self._active_block[way] = block
                return geo.first_ppn_of_block(block)
        raise FTLError("no free NAND pages in any way (GC exhausted)")

    def _maybe_collect(self) -> None:
        if self._gc is None or self._in_gc:
            return
        if self.free_block_count <= self.gc_reserve_blocks:
            self._in_gc = True
            try:
                self._gc.collect()
            finally:
                self._in_gc = False

    # --- wear and utilization statistics -----------------------------------------

    def wear_stats(self) -> dict[str, float]:
        """Erase-count distribution across the module (wear-leveling view)."""
        geo = self.flash.geometry
        counts = [self.flash.erase_count(b) for b in range(geo.total_blocks)]
        total = sum(counts)
        mean = total / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return {
            "total_erases": float(total),
            "mean_erases": mean,
            "max_erases": float(max(counts)),
            "min_erases": float(min(counts)),
            "stdev_erases": variance**0.5,
        }

    def way_utilization(self) -> list[int]:
        """Valid pages per way — round-robin striping should keep this flat."""
        geo = self.flash.geometry
        per_way = [0] * geo.total_ways
        for ppn in self._reverse:
            way_index = geo.block_of(ppn) // geo.blocks_per_way
            per_way[way_index] += 1
        return per_way

    # --- GC support API --------------------------------------------------------

    def victim_candidates(self) -> list[int]:
        """Fully-programmed blocks, cheapest-to-collect first.

        A full block still referenced as a way's "active" block is sealed
        in practice (no free pages left), so it is a legitimate victim;
        :meth:`relocate_block` clears the stale active pointer.
        """
        geo = self.flash.geometry
        candidates = [
            block
            for block in range(geo.total_blocks)
            if self.flash.pages_programmed_in_block(block) == geo.pages_per_block
        ]
        candidates.sort(key=lambda b: self._valid_per_block.get(b, 0))
        return candidates

    def relocate_block(self, block_index: int) -> int:
        """Move a block's valid pages elsewhere and erase it.

        Returns the number of pages relocated. The freed block rejoins its
        way's free list.
        """
        geo = self.flash.geometry
        if self.flash.pages_programmed_in_block(block_index) < geo.pages_per_block:
            raise FTLError(f"relocating block {block_index} that is still open")
        for way, active in self._active_block.items():
            if active == block_index:
                self._active_block[way] = None
        first = geo.first_ppn_of_block(block_index)
        moved = 0
        for ppn in range(first, first + geo.pages_per_block):
            lpn = self._reverse.get(ppn)
            if lpn is None:
                continue
            data = self.flash.read(ppn)
            new_ppn = self._allocate_page()
            self.flash.program(new_ppn, data)
            # Rewire the mapping by hand (not via write(): relocation must
            # not re-trigger GC or count as a logical write).
            del self._reverse[ppn]
            self._valid_per_block[block_index] -= 1
            self._map[lpn] = new_ppn
            self._reverse[new_ppn] = lpn
            new_block = geo.block_of(new_ppn)
            self._valid_per_block[new_block] = (
                self._valid_per_block.get(new_block, 0) + 1
            )
            moved += 1
            self.metrics.counter("relocations").add(1)
        self.flash.erase_block(block_index)
        way = block_index // geo.blocks_per_way
        self._free_blocks[way].append(block_index)
        return moved
