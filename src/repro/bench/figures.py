"""Per-figure experiment definitions (paper §2.4 and §4).

Every function regenerates one table/figure: same x-axis, same series, same
metrics as the paper, at a configurable operation count. Byte and count
metrics are reported both raw and linearly extrapolated to the paper's scale
(1 M PUTs; 10 M for Fig 11), which is exact for fixed-distribution
workloads. Latency metrics are per-op averages and need no scaling.

Fig 12 note: the paper streams ~212 MB through an 8 MB NAND page buffer
(26× the pool). To preserve that steady-state pool pressure at reduced op
counts, fig12 scales the pool down (64 entries = 1 MiB) — without this, the
Backfill policy would simply defer its flushes past the end of the run.
"""

from __future__ import annotations

from repro.bench.report import FigureResult, bench_ops
from repro.device.kvssd import KVSSD
from repro.pcie.link import PCIeLinkConfig
from repro.sim.latency import LatencyModel
from repro.sim.runner import RunResult, run_workload
from repro.units import GIB, KIB, MIB, fmt_bytes
from repro.workloads.workloads import PAPER_WORKLOADS, workload_a

PAPER_OPS_DEFAULT = 1_000_000
PAPER_OPS_FIG11 = 10_000_000

#: Fig 8/11 x-axis: "4 8 16 32 64 128 256 512 1K 2K 4K".
SWEEP_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB)

#: Fig 3/4 x-axis: 1–16 KiB in 1 KiB steps.
KIB_SIZES = tuple(i * KIB for i in range(1, 17))

#: Fig 3(b)/4(b) x-axis.
AMP_SIZES = (32, 64, 128, 256, 512, 1 * KIB)


def _gb_at(result: RunResult, paper_ops: int) -> float:
    return result.scaled_pcie_bytes(paper_ops) / GIB


def _fillseq(ops: int, size: int) -> "workload_a":
    return workload_a(ops, size, seed=42)


# ---------------------------------------------------------------------------
# Tables 1 and 2: platform configuration
# ---------------------------------------------------------------------------

def table1() -> list[FigureResult]:
    """Table 1: HW/SW specification of the (simulated) OpenSSD platform."""
    geo_sim = KVSSD.build().geometry
    link = PCIeLinkConfig()
    rows = [
        ["SoC", "Xilinx Zynq-7000 (ARM Cortex-A9)",
         "behavioral firmware model (LatencyModel memcpy/cmd costs)"],
        ["NAND module", "1 TB, 4 channel & 8 way",
         f"{fmt_bytes(geo_sim.capacity_bytes)} simulated, "
         f"{geo_sim.channels} channel & {geo_sim.ways_per_channel} way, "
         f"{fmt_bytes(geo_sim.page_size)} pages (sparse storage; 1 TB "
         "geometry = 2^26 pages also supported)"],
        ["Interconnect", "PCIe Gen2 ×8 end-points",
         f"PCIe Gen{link.generation} ×{link.lanes} model "
         f"({link.raw_gbps:.1f} GB/s nominal)"],
    ]
    return [
        FigureResult(
            figure_id="table1",
            title="OpenSSD platform specification (paper vs simulated)",
            columns=["component", "paper", "this reproduction"],
            rows=rows,
            notes=[
                "Paper geometry shape (4ch/8way/16KiB pages) is the default; "
                "capacity is configurable and stored sparsely.",
            ],
        )
    ]


def table2() -> list[FigureResult]:
    """Table 2: host node specification (enters only via latency constants)."""
    lat = LatencyModel()
    rows = [
        ["CPU", "Intel Xeon Gold 6226R, 32 cores",
         "host costs folded into command round trip "
         f"({lat.cmd_round_trip_us:.1f} us)"],
        ["Memory", "384 GB DDR4", "page-granular staging allocator (unbounded)"],
        ["OS", "Ubuntu 22.04", "n/a (pure simulation)"],
        ["NVMe passthrough", "synchronous, one command in flight",
         "identical serialization in BandSlimDriver"],
    ]
    return [
        FigureResult(
            figure_id="table2",
            title="Host node specification (paper vs simulated)",
            columns=["component", "paper", "this reproduction"],
            rows=rows,
        )
    ]


# ---------------------------------------------------------------------------
# Figures 3 and 4: the motivation experiments (§2.4)
# ---------------------------------------------------------------------------

def fig3(ops: int | None = None) -> list[FigureResult]:
    """Fig 3: baseline PCIe traffic + response vs value size; TAF."""
    ops = ops if ops is not None else bench_ops(600)
    rows_a = []
    for size in KIB_SIZES:
        r = run_workload("baseline", _fillseq(ops, size), nand_io_enabled=False)
        rows_a.append(
            [size // KIB, round(_gb_at(r, PAPER_OPS_DEFAULT), 3),
             round(r.avg_response_us, 2)]
        )
    fig_a = FigureResult(
        figure_id="fig3a",
        title="Baseline total PCIe traffic and avg transfer response vs value size",
        columns=["value_KiB", "pcie_GB_at_1M_ops", "avg_response_us"],
        rows=rows_a,
        notes=[
            f"{ops} ops/point, traffic extrapolated linearly to 1 M ops "
            "(exact for fixed-size workloads)",
            "expected shape: traffic constant within each 4 KiB bucket, "
            "doubling at page boundaries (paper Fig 3a)",
        ],
    )
    rows_b = []
    for size in AMP_SIZES:
        r = run_workload("baseline", _fillseq(ops, size), nand_io_enabled=False)
        rows_b.append([size, round(r.traffic_amplification, 1)])
    fig_b = FigureResult(
        figure_id="fig3b",
        title="PCIe Traffic Amplification Factor vs value size",
        columns=["value_B", "traffic_amplification_factor"],
        rows=rows_b,
        notes=["paper reports 130.0 / 65.0 / 32.5 / 16.3 / 8.1 / 4.1"],
    )
    return [fig_a, fig_b]


def fig4(ops: int | None = None) -> list[FigureResult]:
    """Fig 4: baseline NAND page writes + write response vs value size; WAF."""
    ops = ops if ops is not None else bench_ops(600)
    rows_a = []
    for size in KIB_SIZES:
        r = run_workload("baseline", _fillseq(ops, size))
        rows_a.append(
            [size // KIB,
             round(r.scaled_nand_writes(PAPER_OPS_DEFAULT) / 1e6, 3),
             round(r.avg_response_us, 1)]
        )
    fig_a = FigureResult(
        figure_id="fig4a",
        title="Baseline NAND page writes and avg write response vs value size",
        columns=["value_KiB", "nand_io_millions_at_1M_ops", "avg_response_us"],
        rows=rows_a,
        notes=[
            f"{ops} ops/point; NAND count extrapolated to 1 M ops",
            "expected shape: write response NAND-dominated, ~10x transfer "
            "response, stepping at page boundaries (paper Fig 4a)",
        ],
    )
    rows_b = []
    for size in AMP_SIZES:
        r = run_workload("baseline", _fillseq(ops, size))
        rows_b.append([size, round(r.write_amplification, 1)])
    fig_b = FigureResult(
        figure_id="fig4b",
        title="NAND Write Amplification Factor vs value size",
        columns=["value_B", "write_amplification_factor"],
        rows=rows_b,
        notes=[
            "paper reports 129.9 / 64.9 / 32.4 / 16.2 / 8.1 / 4.0 — WAF "
            "mirrors TAF (includes LSM index writes, as in the paper)",
        ],
    )
    return [fig_a, fig_b]


# ---------------------------------------------------------------------------
# Figure 8: fine-grained value transfer (§4.2)
# ---------------------------------------------------------------------------

def fig8(ops: int | None = None) -> list[FigureResult]:
    """Fig 8: Baseline vs Piggyback traffic and response, NAND disabled."""
    ops = ops if ops is not None else bench_ops(600)
    rows = []
    for size in SWEEP_SIZES:
        base = run_workload("baseline", _fillseq(ops, size), nand_io_enabled=False)
        pig = run_workload("piggyback", _fillseq(ops, size), nand_io_enabled=False)
        rows.append(
            [size,
             round(_gb_at(base, PAPER_OPS_DEFAULT), 3),
             round(_gb_at(pig, PAPER_OPS_DEFAULT), 3),
             round(base.avg_response_us, 2),
             round(pig.avg_response_us, 2)]
        )
    reduction_32 = 1 - rows[3][2] / rows[3][1]
    return [
        FigureResult(
            figure_id="fig8",
            title="Total PCIe traffic and avg response: Baseline vs Piggyback",
            columns=["value_B", "base_traffic_GB_at_1M", "piggy_traffic_GB_at_1M",
                     "base_resp_us", "piggy_resp_us"],
            rows=rows,
            notes=[
                f"{ops} ops/point, NAND I/O disabled (as in §4.2)",
                f"traffic reduction at 32 B: {reduction_32:.1%} "
                "(paper headline: up to 97.9 %)",
                "expected crossovers: response ~half at <=32 B, parity ~64 B, "
                "degradation from 128 B; traffic crossover near 2-4 KiB",
            ],
        )
    ]


# ---------------------------------------------------------------------------
# Figure 9: hybrid transfer (§4.2)
# ---------------------------------------------------------------------------

def fig9(ops: int | None = None) -> list[FigureResult]:
    """Fig 9: 4 KiB + trailing bytes — Baseline vs Piggyback vs Hybrid."""
    ops = ops if ops is not None else bench_ops(300)
    tails = (4, 8, 16, 32, 64, 128, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB)
    traffic_rows, resp_rows = [], []
    for tail in tails:
        size = 4 * KIB + tail
        base = run_workload("baseline", _fillseq(ops, size), nand_io_enabled=False)
        pig = run_workload("piggyback", _fillseq(ops, size), nand_io_enabled=False)
        hyb = run_workload("hybrid", _fillseq(ops, size), nand_io_enabled=False)
        traffic_rows.append(
            [tail, round(_gb_at(base, PAPER_OPS_DEFAULT), 3),
             round(_gb_at(pig, PAPER_OPS_DEFAULT), 3),
             round(_gb_at(hyb, PAPER_OPS_DEFAULT), 3)]
        )
        resp_rows.append(
            [tail, round(base.avg_response_us, 1),
             round(pig.avg_response_us, 1), round(hyb.avg_response_us, 1)]
        )
    return [
        FigureResult(
            figure_id="fig9a",
            title="PCIe traffic for 4 KiB + trailing bytes",
            columns=["trailing_B", "baseline_GB_at_1M", "piggyback_GB_at_1M",
                     "hybrid_GB_at_1M"],
            rows=traffic_rows,
            notes=[
                f"{ops} ops/point, NAND disabled",
                "expected: hybrid optimal traffic for small-to-mid tails "
                "(paper: best up to ~2 KiB trailing)",
            ],
        ),
        FigureResult(
            figure_id="fig9b",
            title="Avg response for 4 KiB + trailing bytes",
            columns=["trailing_B", "baseline_us", "piggyback_us", "hybrid_us"],
            rows=resp_rows,
            notes=[
                "expected: piggyback far worse; hybrid does not beat baseline "
                "on response (paper §4.2: 'it does not improve performance')",
            ],
        ),
    ]


# ---------------------------------------------------------------------------
# Figure 10: adaptive transfer across workloads (§4.2)
# ---------------------------------------------------------------------------

def fig10(ops: int | None = None) -> list[FigureResult]:
    """Fig 10: Baseline/Piggyback/Adaptive on W(B), W(C), W(D), W(M)."""
    ops = ops if ops is not None else bench_ops(2000)
    configs = ("baseline", "piggyback", "adaptive")
    results: dict[tuple[str, str], RunResult] = {}
    for cfg in configs:
        for wname, factory in PAPER_WORKLOADS.items():
            results[(cfg, wname)] = run_workload(
                cfg, factory(ops, seed=42), nand_io_enabled=False
            )

    def sub(fid, title, metric, digits=2):
        rows = []
        for cfg in configs:
            row = [cfg]
            for wname in PAPER_WORKLOADS:
                row.append(round(metric(results[(cfg, wname)]), digits))
            rows.append(row)
        return FigureResult(
            figure_id=fid, title=title,
            columns=["config"] + list(PAPER_WORKLOADS), rows=rows,
            notes=[f"{ops} ops/workload, NAND disabled (transfer isolation)"],
        )

    return [
        sub("fig10a", "Avg response time (us)", lambda r: r.avg_response_us),
        sub("fig10b", "Avg throughput (Kops/s)",
            lambda r: r.throughput_kops, digits=1),
        sub("fig10c", "Total PCIe traffic (GB at 1M ops)",
            lambda r: _gb_at(r, PAPER_OPS_DEFAULT), digits=3),
        sub("fig10d", "Host MMIO traffic (MB at 1M ops)",
            lambda r: r.mmio_bytes * (PAPER_OPS_DEFAULT / r.ops) / MIB, digits=1),
    ]


# ---------------------------------------------------------------------------
# Figure 11: fine-grained value packing vs value size (§4.3)
# ---------------------------------------------------------------------------

def fig11(ops: int | None = None) -> list[FigureResult]:
    """Fig 11: NAND I/O and response for the packing/transfer matrix."""
    ops = ops if ops is not None else bench_ops(600)
    configs = ("baseline", "piggyback", "packing", "piggy+pack")
    nand_rows, resp_rows = [], []
    for size in SWEEP_SIZES:
        nand_row, resp_row = [size], [size]
        for cfg in configs:
            r = run_workload(cfg, _fillseq(ops, size))
            nand_row.append(
                round(r.nand_page_writes_with_flush * (PAPER_OPS_FIG11 / ops) / 1e6, 3)
            )
            resp_row.append(round(r.avg_response_us, 1))
        nand_rows.append(nand_row)
        resp_rows.append(resp_row)
    idx32 = SWEEP_SIZES.index(32)
    reduction = 1 - nand_rows[idx32][3] / nand_rows[idx32][1]
    return [
        FigureResult(
            figure_id="fig11a",
            title="NAND page writes (millions at 10M ops) vs value size",
            columns=["value_B", "baseline", "piggyback", "packing", "piggy+pack"],
            rows=nand_rows,
            notes=[
                f"{ops} ops/point, extrapolated to the paper's 10 M PUTs",
                f"NAND write reduction at 32 B (packing vs baseline): "
                f"{reduction:.1%} (paper headline: up to 98.1 %)",
                "All Packing policy, as in §4.3",
            ],
        ),
        FigureResult(
            figure_id="fig11b",
            title="Avg write response (us) vs value size",
            columns=["value_B", "baseline", "piggyback", "packing", "piggy+pack"],
            rows=resp_rows,
            notes=[
                "expected: packing slashes response for small values "
                "(~67 % at 32 B in the paper); piggy+pack degrades from "
                "128 B (serialized trailing commands)",
            ],
        ),
    ]


# ---------------------------------------------------------------------------
# Figure 12: packing policies across workloads (§4.3)
# ---------------------------------------------------------------------------

#: Scaled-down pool (see module docstring): 64 × 16 KiB = 1 MiB.
FIG12_POOL_ENTRIES = 64


def fig12(ops: int | None = None) -> list[FigureResult]:
    """Fig 12: Block/All/Select/Backfill on W(B), W(C), W(D), W(M)."""
    ops = ops if ops is not None else bench_ops(2000)
    configs = ("block", "all", "select", "backfill")
    results: dict[tuple[str, str], RunResult] = {}
    for cfg in configs:
        for wname, factory in PAPER_WORKLOADS.items():
            results[(cfg, wname)] = run_workload(
                cfg,
                factory(ops, seed=42),
                buffer_entries=FIG12_POOL_ENTRIES,
                dlt_capacity=FIG12_POOL_ENTRIES,
            )

    def sub(fid, title, metric, digits=2, extra_notes=()):
        rows = []
        for cfg in configs:
            row = [cfg]
            for wname in PAPER_WORKLOADS:
                row.append(round(metric(results[(cfg, wname)]), digits))
            rows.append(row)
        return FigureResult(
            figure_id=fid, title=title,
            columns=["policy"] + list(PAPER_WORKLOADS), rows=rows,
            notes=[
                f"{ops} ops/workload, adaptive transfer, "
                f"{FIG12_POOL_ENTRIES}-entry pool (steady-state scaling, "
                "see module docstring)",
                *extra_notes,
            ],
        )

    return [
        sub("fig12a", "Avg response time (us)", lambda r: r.avg_response_us),
        sub("fig12b", "Avg throughput (Kops/s)",
            lambda r: r.throughput_kops, digits=1),
        sub("fig12c", "NAND page writes (thousands at 1M ops)",
            lambda r: r.nand_page_writes_with_flush * (PAPER_OPS_DEFAULT / r.ops) / 1e3,
            digits=1),
        sub("fig12d", "Avg memcpy time (us)", lambda r: r.avg_memcpy_us,
            digits=3,
            extra_notes=[
                "expected ordering for All Packing: W(M) < W(B) < W(D) < W(C)",
                "known divergence: the paper measures Backfill ~7 % above All "
                "on W(B)/W(M); with this model's synchronous flush and the "
                "9:1 byte asymmetry, small values can only backfill ~4 % of "
                "the DMA gaps, so All retains a slight edge (see "
                "EXPERIMENTS.md)",
            ]),
    ]


#: Everything ``python -m repro.bench all`` regenerates, in paper order.
ALL_FIGURES = {
    "table1": table1,
    "table2": table2,
    "fig3": fig3,
    "fig4": fig4,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}
