"""Benchmark harness: regenerates every table and figure in the paper.

Each ``fig*``/``table*`` function runs the corresponding experiment on the
simulator and returns :class:`~repro.bench.report.FigureResult` objects with
the same rows/series the paper plots. ``python -m repro.bench`` regenerates
everything; ``benchmarks/bench_*.py`` wraps the same functions for
``pytest --benchmark-only``.
"""

from repro.bench.figures import (
    ALL_FIGURES,
    fig3,
    fig4,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
)
from repro.bench.report import FigureResult, format_figure

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "format_figure",
    "fig3",
    "fig4",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table1",
    "table2",
]
