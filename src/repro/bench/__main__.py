"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench              # everything, tables to stdout
    python -m repro.bench fig8 fig12   # a subset
    python -m repro.bench --ops 20000 --out results/ all

``--ops`` overrides the per-point operation count (also settable via the
``REPRO_BENCH_OPS`` environment variable); ``--out`` additionally writes
each table to ``<out>/<figure_id>.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.figures import ALL_FIGURES
from repro.bench.report import OPS_ENV_VAR, format_figure, write_results


def main(argv: list[str] | None = None) -> int:
    """Regenerate the requested figures; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate BandSlim's evaluation tables and figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help=f"which figures to run: {', '.join(ALL_FIGURES)} or 'all'",
    )
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per experiment point")
    parser.add_argument("--out", type=str, default=None,
                        help="directory to write per-figure .txt tables")
    args = parser.parse_args(argv)

    names = list(ALL_FIGURES) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figures {unknown}; choose from {list(ALL_FIGURES)}")

    previous_ops = os.environ.get(OPS_ENV_VAR)
    if args.ops is not None:
        os.environ[OPS_ENV_VAR] = str(args.ops)
    all_results = []
    try:
        for name in names:
            started = time.perf_counter()
            results = ALL_FIGURES[name]()
            elapsed = time.perf_counter() - started
            for result in results:
                print(format_figure(result))
                print()
            print(f"[{name}: {elapsed:.1f}s wall]", file=sys.stderr)
            all_results.extend(results)
    finally:
        if args.ops is not None:
            if previous_ops is None:
                os.environ.pop(OPS_ENV_VAR, None)
            else:
                os.environ[OPS_ENV_VAR] = previous_ops

    if args.out:
        paths = write_results(all_results, args.out)
        print(f"wrote {len(paths)} tables under {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
