"""Formatting for benchmark results: aligned tables with notes."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Environment knob: operations per experiment point (see DESIGN.md §3).
OPS_ENV_VAR = "REPRO_BENCH_OPS"


def bench_ops(default: int) -> int:
    """Per-point op count, overridable via ``REPRO_BENCH_OPS``."""
    raw = os.environ.get(OPS_ENV_VAR)
    if raw is None:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"{OPS_ENV_VAR} must be >= 1, got {value}")
    return value


@dataclass
class FigureResult:
    """One table/figure regenerated from the simulator."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def row_dicts(self) -> list[dict]:
        """Rows as {column: value} dicts (assertion-friendly view)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list:
        """All values of one named column, in row order."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_figure(result: FigureResult) -> str:
    """Render one figure as an aligned text table with its notes."""
    header = f"== {result.figure_id}: {result.title} =="
    cells = [result.columns] + [
        [_fmt_cell(v) for v in row] for row in result.rows
    ]
    widths = [
        max(len(row[i]) for row in cells) for i in range(len(result.columns))
    ]
    lines = [header]
    lines.append("  ".join(c.rjust(w) for c, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def write_results(results: list[FigureResult], out_dir: str) -> list[str]:
    """Write each figure's table to ``out_dir/<figure_id>.txt``."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for result in results:
        path = os.path.join(out_dir, f"{result.figure_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(format_figure(result) + "\n")
        paths.append(path)
    return paths
