"""Batched discrete-event fast path for the pipelined PUT/GET hot loops.

``FusedBatchEngine`` executes a whole ``put_many``/``get_many`` batch with
the per-command protocol plumbing *fused*: submission/completion byte
accounting, the per-command clock arithmetic, and the completion heap all
run on local variables, flushed back to the real counters once per batch.
The simulation itself — packing placement, LSM index ops, vLog reads, NAND
timeline bookings — still goes through the real objects, with the
simulated clock synchronized around every such call.

Why this is safe (and how it is proven):

* **Bit-identical clock arithmetic.** ``SimClock.advance`` is a single
  ``_now_us += delta`` on a float. The engine applies the *same* ``+=``
  operations with the *same* cached per-instance constants
  (``link._submit_us``, ``controller._cmd_process_us``, ...) in the *same*
  order as the generic path, so the final clock value is equal at the bit
  level, not merely approximately. ``tests/sim/test_engine.py`` asserts
  exact clock/snapshot equality against the generic path on randomized op
  sequences, and the frozen seed goldens cover the serial path.
* **Same completion order.** Completions park on a heap keyed by
  ``(finish_us, seq)`` with a per-batch monotonic ``seq`` — exactly
  :class:`repro.nvme.queue.CompletionScheduler`'s ordering rule.
* **Metric totals flushed, samples recorded live.** Pure counters
  (PCIe bytes/transactions, commands processed, memcpy bytes, puts/gets,
  doorbell rings, DMA transfer counts, the command-id cursor) accumulate
  in locals and flush in a ``finally``; per-sample statistics (latency
  stats/histograms, ``memcpy_us_per_op``) are recorded through the real
  ``record()`` calls so Welford state and bucket counts match exactly.
* **Skipped work is invisible.** Host-page staging, PRP list construction,
  SQ/CQ ring pushes, and the device-scratch bounce of the GET path are
  net-zero simulated state that ``KVSSD.snapshot()`` never sees; the
  engine skips the object churn but still charges every byte and
  microsecond they imply (including the >2-page PRP-list fetch).

Eligibility is decided by the driver (see ``BandSlimDriver.put_many``):
queue depth > 1, no tracer, no fault injector, no command timeout, no
durability journal, no pending piggyback state, and no HYBRID transfer
plans in the batch. Anything else falls back to the generic path.

Slots are pooled and reused across batches (no per-op object churn); every
field is reassigned on reuse, which ``tests/sim/test_engine.py`` checks by
interleaving dissimilar batches through one engine.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush

from repro.errors import KeyNotFoundError
from repro.nvme.opcodes import StatusCode

from repro.core.driver import OpResult as _op_result
from repro.units import (
    MEM_PAGE_SIZE,
    NVME_COMMAND_SIZE,
    NVME_COMPLETION_SIZE,
    pages_needed,
)

_ZERO_PAGE = bytes(MEM_PAGE_SIZE)


class _PutSlot:
    """Pooled per-op record for an in-flight batched PUT."""

    __slots__ = ("index", "start_us", "remaining", "commands")


class _GetSlot:
    """Pooled per-op record for an in-flight batched GET."""

    __slots__ = ("index", "start_us", "status", "value")


class FusedBatchEngine:
    """Executes eligible ``put_many``/``get_many`` batches on local state."""

    __slots__ = ("driver", "_put_pool", "_get_pool")

    def __init__(self, driver) -> None:
        self.driver = driver
        self._put_pool: list[_PutSlot] = []
        self._get_pool: list[_GetSlot] = []

    def _put_slots(self, count: int) -> list[_PutSlot]:
        pool = self._put_pool
        while len(pool) < count:
            pool.append(_PutSlot())
        return pool

    def _get_slots(self, count: int) -> list[_GetSlot]:
        pool = self._get_pool
        while len(pool) < count:
            pool.append(_GetSlot())
        return pool

    # --- batched PUT ------------------------------------------------------

    def put_batch(self, pairs, plans, qd: int, results: list) -> list:
        """Fused equivalent of the generic ``put_many`` pipeline.

        ``pairs`` are pre-validated (non-empty, within ``max_value_bytes``)
        and ``plans`` contains one PIGGYBACK or PRP plan per pair (no
        HYBRID — the driver gates that).
        """
        driver = self.driver
        link = driver.link
        clock = driver.clock
        controller = driver.controller
        flash = controller._flash
        policy = controller.policy
        buffer = controller.buffer
        lsm = controller.lsm
        dma = controller.dma
        dram = dma.dram
        sq = driver.sq

        # Fixed per-command costs/sizes, resolved once per batch. Reading
        # them fresh each batch keeps config changes (SET FEATURES) honest.
        submit_us = link._submit_us
        complete_us = link._complete_us
        dma_setup_us = link._dma_setup_us
        dma_per_byte_us = link._dma_per_byte_us
        doorbell = link._doorbell_size
        sq_fetch_us = link.latency.sq_fetch_us
        cmd_process_us = controller._cmd_process_us
        memcpy_setup_us = controller._memcpy_setup_us
        memcpy_per_byte_us = controller._memcpy_per_byte_us

        # Latency stat/histogram state unpacked onto locals: the loop body
        # applies the exact Welford/bucket updates RunningStat.record and
        # Histogram.record would, in the same order, and the finally below
        # writes the state back. Nothing reads these stats mid-batch.
        s_put = driver._s_put_latency
        sp_n = s_put._n
        sp_total = s_put._total
        sp_mean = s_put._mean
        sp_m2 = s_put._m2
        sp_min = s_put._min
        sp_max = s_put._max
        h_put = driver._h_put_latency
        hp_n = h_put._n
        hp_min = h_put._min
        hp_max = h_put._max
        hp_edges = h_put._edges
        hp_counts = h_put._counts  # mutated in place, no write-back needed
        s_memcpy = controller._s_memcpy_us_per_op
        sm_n = s_memcpy._n
        sm_total = s_memcpy._total
        sm_mean = s_memcpy._mean
        sm_m2 = s_memcpy._m2
        sm_min = s_memcpy._min
        sm_max = s_memcpy._max
        bisect = bisect_left
        place_piggyback = policy.place_piggyback
        place_dma = policy.place_dma
        finalize_value = policy.finalize_value
        write_bytes = buffer.write_bytes
        addr_of = buffer.addr_of
        page_targets = buffer.dma_page_targets
        lsm_put = lsm.put
        dram_write = dram.write
        op_result = _op_result
        success = StatusCode.SUCCESS

        now = clock._now_us
        heap: list = []
        seq = 0
        inflight = 0
        # Batch accumulators, flushed in the finally below.
        ncommands = 0
        db_txns = sq_txns = cq_txns = 0
        sq_bytes = 0
        h2d_bytes = h2d_txns = 0
        memcpy_bytes = 0
        puts = 0
        # Residue carried across ops: a preceding GET's memcpy charge lands
        # in the next PUT's memcpy_us_per_op sample, as in the generic path.
        op_memcpy = controller._op_memcpy_us

        slots = self._put_slots(len(pairs))
        try:
            for index, (key, value) in enumerate(pairs):
                plan = plans[index]
                n_cmds = plan.command_count
                slot = slots[index]
                slot.index = index
                slot.start_us = now
                slot.remaining = n_cmds
                slot.commands = n_cmds

                if plan.inline_bytes:  # PIGGYBACK: inline head + fragments
                    vsize = len(value)
                    cursor = 0
                    value_offset = 0
                    pos = plan.inline_bytes
                    for cmd_i in range(n_cmds):
                        # Reap until a queue slot frees up (finish order).
                        while inflight >= qd:
                            finish, _, done = heappop(heap)
                            inflight -= 1
                            if finish > now:
                                now = finish
                            cq_txns += 1
                            db_txns += 1
                            now += complete_us
                            done.remaining -= 1
                            if done.remaining == 0:
                                elapsed = now - done.start_us
                                sp_n += 1
                                sp_total += elapsed
                                delta = elapsed - sp_mean
                                sp_mean += delta / sp_n
                                sp_m2 += delta * (elapsed - sp_mean)
                                if elapsed < sp_min:
                                    sp_min = elapsed
                                if elapsed > sp_max:
                                    sp_max = elapsed
                                hp_n += 1
                                if elapsed < hp_min:
                                    hp_min = elapsed
                                if elapsed > hp_max:
                                    hp_max = elapsed
                                hp_counts[bisect(hp_edges, elapsed)] += 1
                                puts += 1
                                results[done.index] = op_result(
                                    elapsed, done.commands, success
                                )
                        # Submit: doorbell MMIO + 64 B SQE fetch.
                        db_txns += 1
                        sq_txns += 1
                        sq_bytes += NVME_COMMAND_SIZE
                        now += submit_us
                        ncommands += 1
                        # Inlined flash.begin_deferred() (depth known 0).
                        flash._deferred = 1
                        flash._deferred_end_us = now
                        now += cmd_process_us
                        try:
                            if cmd_i == 0:
                                clock._now_us = now
                                placement = place_piggyback(vsize)
                                now = clock._now_us
                                value_offset = placement.value_offset
                                take = plan.inline_bytes
                                write_bytes(value_offset, value[:take])
                                cursor = value_offset + take
                            else:
                                take = plan.trailing_fragments[cmd_i - 1]
                                write_bytes(cursor, value[pos : pos + take])
                                cursor += take
                                pos += take
                            cost = memcpy_setup_us + take * memcpy_per_byte_us
                            now += cost
                            memcpy_bytes += take
                            op_memcpy += cost
                            if cmd_i == n_cmds - 1:  # final fragment: commit
                                addr = addr_of(value_offset, vsize)
                                clock._now_us = now
                                lsm_put(key, addr)
                                finalize_value()
                                now = clock._now_us
                                sm_n += 1
                                sm_total += op_memcpy
                                delta = op_memcpy - sm_mean
                                sm_mean += delta / sm_n
                                sm_m2 += delta * (op_memcpy - sm_mean)
                                if op_memcpy < sm_min:
                                    sm_min = op_memcpy
                                if op_memcpy > sm_max:
                                    sm_max = op_memcpy
                                op_memcpy = 0.0
                        finally:
                            flash._deferred = 0
                            nand_end = flash._deferred_end_us
                        if nand_end < now:
                            nand_end = now
                        heappush(heap, (nand_end, seq, slot))
                        seq += 1
                        inflight += 1
                else:  # PRP: one STORE command, page-unit DMA
                    while inflight >= qd:
                        finish, _, done = heappop(heap)
                        inflight -= 1
                        if finish > now:
                            now = finish
                        cq_txns += 1
                        db_txns += 1
                        now += complete_us
                        done.remaining -= 1
                        if done.remaining == 0:
                            elapsed = now - done.start_us
                            sp_n += 1
                            sp_total += elapsed
                            delta = elapsed - sp_mean
                            sp_mean += delta / sp_n
                            sp_m2 += delta * (elapsed - sp_mean)
                            if elapsed < sp_min:
                                sp_min = elapsed
                            if elapsed > sp_max:
                                sp_max = elapsed
                            hp_n += 1
                            if elapsed < hp_min:
                                hp_min = elapsed
                            if elapsed > hp_max:
                                hp_max = elapsed
                            hp_counts[bisect(hp_edges, elapsed)] += 1
                            puts += 1
                            results[done.index] = op_result(
                                elapsed, done.commands, success
                            )
                    db_txns += 1
                    sq_txns += 1
                    sq_bytes += NVME_COMMAND_SIZE
                    now += submit_us
                    ncommands += 1
                    flash._deferred = 1
                    flash._deferred_end_us = now
                    now += cmd_process_us
                    try:
                        vsize = len(value)
                        n_pages = plan.dma_pages
                        wire = plan.dma_wire_bytes
                        clock._now_us = now
                        placement = place_dma(vsize, wire)
                        now = clock._now_us
                        if n_pages > 2:
                            # PRP-list fetch: (n-1) 8 B entries, one txn.
                            sq_bytes += (n_pages - 1) * 8
                            sq_txns += 1
                            now += sq_fetch_us
                        target = placement.dma_target
                        if target is not None:
                            # Direct scatter into the NAND page buffer. The
                            # staged host pages are zero-padded, so the
                            # trailing partial page lands as value + zeros.
                            # Targets come from the buffer's entry mapping —
                            # wire pages are NOT contiguous in DRAM when the
                            # placement wraps the entry ring.
                            targets = page_targets(target, wire)
                            for page_i in range(n_pages):
                                chunk = value[
                                    page_i * MEM_PAGE_SIZE : (page_i + 1) * MEM_PAGE_SIZE
                                ]
                                if len(chunk) < MEM_PAGE_SIZE:
                                    chunk = chunk + _ZERO_PAGE[len(chunk) :]
                                dram_write(targets[page_i], chunk)
                            h2d_bytes += wire
                            h2d_txns += 1
                            now += dma_setup_us + wire * dma_per_byte_us
                        else:
                            # Unaligned placement: DMA to device scratch,
                            # then memcpy into place. The scratch bounce
                            # itself is simulated-state-free; only its
                            # byte/time charges matter.
                            h2d_bytes += wire
                            h2d_txns += 1
                            now += dma_setup_us + wire * dma_per_byte_us
                            write_bytes(placement.value_offset, value)
                            cost = memcpy_setup_us + vsize * memcpy_per_byte_us
                            now += cost
                            memcpy_bytes += vsize
                            op_memcpy += cost
                        addr = addr_of(placement.value_offset, vsize)
                        clock._now_us = now
                        lsm_put(key, addr)
                        finalize_value()
                        now = clock._now_us
                        sm_n += 1
                        sm_total += op_memcpy
                        delta = op_memcpy - sm_mean
                        sm_mean += delta / sm_n
                        sm_m2 += delta * (op_memcpy - sm_mean)
                        if op_memcpy < sm_min:
                            sm_min = op_memcpy
                        if op_memcpy > sm_max:
                            sm_max = op_memcpy
                        op_memcpy = 0.0
                    finally:
                        flash._deferred = 0
                        nand_end = flash._deferred_end_us
                    if nand_end < now:
                        nand_end = now
                    heappush(heap, (nand_end, seq, slot))
                    seq += 1
                    inflight += 1
            # Drain the tail.
            while heap:
                finish, _, done = heappop(heap)
                if finish > now:
                    now = finish
                cq_txns += 1
                db_txns += 1
                now += complete_us
                done.remaining -= 1
                if done.remaining == 0:
                    elapsed = now - done.start_us
                    sp_n += 1
                    sp_total += elapsed
                    delta = elapsed - sp_mean
                    sp_mean += delta / sp_n
                    sp_m2 += delta * (elapsed - sp_mean)
                    if elapsed < sp_min:
                        sp_min = elapsed
                    if elapsed > sp_max:
                        sp_max = elapsed
                    hp_n += 1
                    if elapsed < hp_min:
                        hp_min = elapsed
                    if elapsed > hp_max:
                        hp_max = elapsed
                    hp_counts[bisect(hp_edges, elapsed)] += 1
                    puts += 1
                    results[done.index] = op_result(elapsed, done.commands, success)
        finally:
            clock._now_us = now
            controller._op_memcpy_us = op_memcpy
            s_put._n = sp_n
            s_put._total = sp_total
            s_put._mean = sp_mean
            s_put._m2 = sp_m2
            s_put._min = sp_min
            s_put._max = sp_max
            h_put._n = hp_n
            h_put._min = hp_min
            h_put._max = hp_max
            s_memcpy._n = sm_n
            s_memcpy._total = sm_total
            s_memcpy._mean = sm_mean
            s_memcpy._m2 = sm_m2
            s_memcpy._min = sm_min
            s_memcpy._max = sm_max
            link._db_bytes._value += (db_txns) * doorbell
            link._db_txns._value += db_txns
            link._sq_bytes._value += sq_bytes
            link._sq_txns._value += sq_txns
            link._cq_bytes._value += cq_txns * NVME_COMPLETION_SIZE
            link._cq_txns._value += cq_txns
            link._h2d_bytes._value += h2d_bytes
            link._h2d_txns._value += h2d_txns
            dma.h2d_transfers += h2d_txns
            sq.doorbell_rings += ncommands
            controller._c_commands_processed._value += ncommands
            controller._c_memcpy_bytes._value += memcpy_bytes
            driver._c_puts._value += puts
            driver._next_cid = (driver._next_cid + len(pairs)) % 2**16
        return results

    # --- batched GET ------------------------------------------------------

    def get_batch(self, keys, size: int, qd: int) -> list:
        """Fused equivalent of the generic ``get_many`` pipeline."""
        driver = self.driver
        link = driver.link
        clock = driver.clock
        controller = driver.controller
        flash = controller._flash
        lsm = controller.lsm
        dma = driver.controller.dma
        sq = driver.sq

        submit_us = link._submit_us
        complete_us = link._complete_us
        dma_setup_us = link._dma_setup_us
        dma_per_byte_us = link._dma_per_byte_us
        doorbell = link._doorbell_size
        sq_fetch_us = link.latency.sq_fetch_us
        cmd_process_us = controller._cmd_process_us
        memcpy_setup_us = controller._memcpy_setup_us
        memcpy_per_byte_us = controller._memcpy_per_byte_us
        #: >2-page PRP lists are keyed on the *buffer* size, as in
        #: ``_dma_to_host`` — the host allocates for ``size`` up front.
        prp_list_entries = pages_needed(size) - 1 if size > 2 * MEM_PAGE_SIZE else 0

        # Stat/histogram state on locals; see put_batch for the rules.
        s_get = driver._s_get_latency
        sg_n = s_get._n
        sg_total = s_get._total
        sg_mean = s_get._mean
        sg_m2 = s_get._m2
        sg_min = s_get._min
        sg_max = s_get._max
        h_get = driver._h_get_latency
        hg_n = h_get._n
        hg_min = h_get._min
        hg_max = h_get._max
        hg_edges = h_get._edges
        hg_counts = h_get._counts
        bisect = bisect_left
        get_address = lsm.get_address
        vlog = lsm.vlog
        vlog_read = vlog.read
        # Buffered single-page reads (the common case under write-heavy
        # mixes) are served straight from the write buffer: same slice,
        # same counters, no simulated cost — exactly what VLog.read does,
        # minus the call chain. Anything else falls through to the real
        # read (NAND timing, multi-page spans, bounds errors).
        page_size = vlog.page_size
        vlog_base = vlog.base_lpn
        vlog_end = vlog.end_lpn
        unflushed_page = vlog._buffer.unflushed_page
        vr_reads = 0
        vr_bytes = 0
        op_result = _op_result
        success = StatusCode.SUCCESS
        not_found = StatusCode.KEY_NOT_FOUND
        capacity_exceeded = StatusCode.CAPACITY_EXCEEDED

        results: list = [None] * len(keys)
        now = clock._now_us
        heap: list = []
        seq = 0
        inflight = 0
        ncommands = 0
        db_txns = sq_txns = cq_txns = 0
        sq_bytes = 0
        d2h_bytes = d2h_txns = 0
        memcpy_bytes = 0
        gets = 0
        op_memcpy = controller._op_memcpy_us

        slots = self._get_slots(len(keys))
        controller.begin_read_batch()
        try:
            for index, key in enumerate(keys):
                while inflight >= qd:
                    finish, _, done = heappop(heap)
                    inflight -= 1
                    if finish > now:
                        now = finish
                    cq_txns += 1
                    db_txns += 1
                    now += complete_us
                    elapsed = now - done.start_us
                    status = done.status
                    if status is not not_found:
                        sg_n += 1
                        sg_total += elapsed
                        delta = elapsed - sg_mean
                        sg_mean += delta / sg_n
                        sg_m2 += delta * (elapsed - sg_mean)
                        if elapsed < sg_min:
                            sg_min = elapsed
                        if elapsed > sg_max:
                            sg_max = elapsed
                        hg_n += 1
                        if elapsed < hg_min:
                            hg_min = elapsed
                        if elapsed > hg_max:
                            hg_max = elapsed
                        hg_counts[bisect(hg_edges, elapsed)] += 1
                        gets += 1
                    results[done.index] = op_result(elapsed, 1, status, done.value)
                slot = slots[index]
                slot.index = index
                slot.start_us = now
                # Submit.
                db_txns += 1
                sq_txns += 1
                sq_bytes += NVME_COMMAND_SIZE
                now += submit_us
                ncommands += 1
                # Inlined begin_deferred()/begin_deferred_reads().
                flash._deferred = 1
                flash._deferred_end_us = now
                now += cmd_process_us
                try:
                    status = success
                    data = None
                    flash._defer_reads = 1
                    flash._read_chain_us = now
                    clock._now_us = now
                    try:
                        try:
                            addr = get_address(key)
                        except KeyNotFoundError:
                            status = not_found
                        else:
                            asize = addr.size
                            if asize > size:
                                status = capacity_exceeded
                            else:
                                offset = addr.offset
                                lpn = addr.lpn
                                if (
                                    offset < page_size
                                    and asize <= page_size - offset
                                    and vlog_base <= lpn < vlog_end
                                ):
                                    page = unflushed_page(lpn)
                                    if page is None:
                                        data = vlog_read(addr)
                                    else:
                                        data = page[offset : offset + asize]
                                        vr_reads += 1
                                        vr_bytes += asize
                                else:
                                    data = vlog_read(addr)
                    finally:
                        flash._defer_reads = 0
                    now = clock._now_us
                    if status is success:
                        n = len(data)
                        if n:
                            cost = memcpy_setup_us + n * memcpy_per_byte_us
                            now += cost
                            memcpy_bytes += n
                            op_memcpy += cost
                        if prp_list_entries:
                            sq_bytes += prp_list_entries * 8
                            sq_txns += 1
                            now += sq_fetch_us
                        wire = -(-n // MEM_PAGE_SIZE) * MEM_PAGE_SIZE
                        if wire:
                            d2h_bytes += wire
                            d2h_txns += 1
                            now += dma_setup_us + wire * dma_per_byte_us
                    slot.status = status
                    slot.value = data
                finally:
                    flash._deferred = 0
                    nand_end = flash._deferred_end_us
                if nand_end < now:
                    nand_end = now
                heappush(heap, (nand_end, seq, slot))
                seq += 1
                inflight += 1
            while heap:
                finish, _, done = heappop(heap)
                if finish > now:
                    now = finish
                cq_txns += 1
                db_txns += 1
                now += complete_us
                elapsed = now - done.start_us
                status = done.status
                if status is not not_found:
                    sg_n += 1
                    sg_total += elapsed
                    delta = elapsed - sg_mean
                    sg_mean += delta / sg_n
                    sg_m2 += delta * (elapsed - sg_mean)
                    if elapsed < sg_min:
                        sg_min = elapsed
                    if elapsed > sg_max:
                        sg_max = elapsed
                    hg_n += 1
                    if elapsed < hg_min:
                        hg_min = elapsed
                    if elapsed > hg_max:
                        hg_max = elapsed
                    hg_counts[bisect(hg_edges, elapsed)] += 1
                    gets += 1
                results[done.index] = op_result(elapsed, 1, status, done.value)
        finally:
            controller.end_read_batch()
            clock._now_us = now
            controller._op_memcpy_us = op_memcpy
            s_get._n = sg_n
            s_get._total = sg_total
            s_get._mean = sg_mean
            s_get._m2 = sg_m2
            s_get._min = sg_min
            s_get._max = sg_max
            h_get._n = hg_n
            h_get._min = hg_min
            h_get._max = hg_max
            vlog._c_reads._value += vr_reads
            vlog._c_bytes_read._value += vr_bytes
            link._db_bytes._value += db_txns * doorbell
            link._db_txns._value += db_txns
            link._sq_bytes._value += sq_bytes
            link._sq_txns._value += sq_txns
            link._cq_bytes._value += cq_txns * NVME_COMPLETION_SIZE
            link._cq_txns._value += cq_txns
            link._d2h_bytes._value += d2h_bytes
            link._d2h_txns._value += d2h_txns
            dma.d2h_transfers += d2h_txns
            sq.doorbell_rings += ncommands
            controller._c_commands_processed._value += ncommands
            controller._c_memcpy_bytes._value += memcpy_bytes
            driver._c_gets._value += gets
            driver._next_cid = (driver._next_cid + len(keys)) % 2**16
        return results
