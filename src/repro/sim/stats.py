"""Metric primitives: counters, running statistics, histograms.

The evaluation section of the paper reports totals (PCIe bytes, NAND page
programs), averages (response time, memcpy time), and rates (Kops/s). These
primitives back all of them. ``RunningStat`` uses Welford's online algorithm
so million-operation runs keep O(1) memory; callers that need percentiles
opt into sample retention.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator


class Counter:
    """A named monotonically increasing tally (events and bytes)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def add(self, amount: int = 1) -> int:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self._value += amount
        return self._value

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class RunningStat:
    """Online mean/variance/min/max (Welford), O(1) memory.

    >>> s = RunningStat("lat")
    >>> for x in (1.0, 2.0, 3.0): s.record(x)
    >>> s.mean
    2.0
    """

    __slots__ = ("name", "_n", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self, name: str) -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def record(self, value: float) -> None:
        self._n += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        return self._m2 / (self._n - 1) if self._n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._n else 0.0

    @property
    def max(self) -> float:
        return self._max if self._n else 0.0

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def merge(self, other: "RunningStat") -> None:
        """Fold another stat into this one (parallel-runs aggregation)."""
        if other._n == 0:
            return
        if self._n == 0:
            self._n = other._n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        n = self._n + other._n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._n * other._n / n
        self._mean += delta * other._n / n
        self._n = n
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def __repr__(self) -> str:
        return (
            f"RunningStat({self.name!r}, n={self._n}, mean={self.mean:.3f}, "
            f"min={self.min:.3f}, max={self.max:.3f})"
        )


class Histogram:
    """Fixed-boundary histogram with overflow bucket and percentiles.

    Boundaries are upper bin edges; a sample lands in the first bin whose
    edge is >= the sample. Percentiles are linear within the winning bin,
    which is accurate enough for latency reporting. Running min/max are
    kept so every percentile stays inside [observed min, observed max]:
    ranks landing in the overflow bucket report the largest observed
    sample instead of clamping to the top edge, interpolation in the
    first populated bin anchors at the observed minimum (not 0), and
    in-bin interpolation never overshoots the observed maximum.
    """

    __slots__ = ("name", "_edges", "_counts", "_n", "_lowest_edge", "_min", "_max")

    def __init__(self, name: str, edges: Iterable[float]) -> None:
        self.name = name
        self._edges = sorted(float(e) for e in edges)
        if not self._edges:
            raise ValueError("histogram needs at least one edge")
        if len(set(self._edges)) != len(self._edges):
            raise ValueError("histogram edges must be distinct")
        self._counts = [0] * (len(self._edges) + 1)  # +1 = overflow
        self._n = 0
        self._lowest_edge = self._edges[0]
        self._min = math.inf
        self._max = -math.inf

    @classmethod
    def exponential(
        cls, name: str, start: float = 1.0, factor: float = 2.0, count: int = 24
    ) -> "Histogram":
        """Histogram with geometrically spaced edges (latency-friendly)."""
        if start <= 0 or factor <= 1 or count < 1:
            raise ValueError("need start>0, factor>1, count>=1")
        return cls(name, [start * factor**i for i in range(count)])

    def record(self, value: float) -> None:
        self._n += 1
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value
        # bisect_left finds the first edge >= value (overflow bucket when
        # value exceeds every edge) — same search, C implementation.
        self._counts[bisect_left(self._edges, value)] += 1

    @property
    def count(self) -> int:
        return self._n

    @property
    def min(self) -> float:
        """Smallest recorded sample (0.0 when empty)."""
        return self._min if self._n else 0.0

    @property
    def max(self) -> float:
        """Largest recorded sample (0.0 when empty)."""
        return self._max if self._n else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper_edge, count) pairs; overflow reported with edge=inf."""
        pairs = list(zip(self._edges, self._counts[:-1]))
        pairs.append((math.inf, self._counts[-1]))
        return pairs

    def percentile(self, p: float, *, seed_interpolation: bool = False) -> float:
        """Approximate p-th percentile (0 < p <= 100).

        Results always lie inside [observed min, observed max] and are
        monotone nondecreasing in ``p``. ``seed_interpolation=True``
        reproduces the frozen-golden interpolation (nominal bin bounds,
        no observed-min/max tightening, PR 3 overflow semantics) — used
        only by ``MetricSet.snapshot(seed_schema=True)`` so the seed
        golden captures stay byte-identical.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self._n == 0:
            return 0.0
        target = math.ceil(self._n * p / 100.0)
        seen = 0
        prev_edge = 0.0
        # Empty bins are skipped outright: a bin with cnt == 0 can never
        # hold the target rank, and treating it as a hit would return its
        # edge without interpolating.
        for edge, cnt in zip(self._edges, self._counts):
            if cnt and seen + cnt >= target:
                # Interpolate between the bin bounds, tightened to what was
                # actually observed: the first populated bin anchors at the
                # recorded minimum (the bin's nominal lower bound — 0.0 for
                # the very first bin — can sit far below every sample), and
                # the last populated bin tops out at the recorded maximum
                # (the nominal upper edge can sit far above every sample).
                # Bins holding neither extremum are unaffected: min lies at
                # or below their lower edge and max at or above their upper
                # edge, so the max()/min() pick the nominal bounds.
                if seed_interpolation:
                    lo, hi = prev_edge, edge
                    return lo + ((target - seen) / cnt) * (hi - lo)
                lo = prev_edge if prev_edge > self._min else self._min
                hi = edge if edge < self._max else self._max
                value = lo + ((target - seen) / cnt) * (hi - lo)
                # frac == 1 can overshoot hi by one ulp (lo + 1.0 * (hi -
                # lo) need not round back to hi); clamp so the guarantee
                # "never above the observed maximum" holds exactly.
                return value if value < hi else hi
            seen += cnt
            prev_edge = edge
        # Target rank lands in the overflow bucket: report the largest
        # observed sample. Clamping to the top edge (the seed behavior)
        # reported p99 = 4 µs for a run with 99 % of samples at 100 µs.
        return self._max if self._max > self._edges[-1] else self._edges[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one, bucket-wise.

        Both histograms must share identical edges (sweep workers and array
        shards all build theirs from the same config, so this holds by
        construction); merged percentiles are exactly what recording every
        sample into one histogram would have produced.
        """
        if self._edges != other._edges:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"edge sets differ"
            )
        if other._n == 0:
            return
        for i, cnt in enumerate(other._counts):
            self._counts[i] += cnt
        self._n += other._n
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    def state(self) -> dict:
        """JSON-able bucket state for cross-process merging."""
        return {
            "name": self.name,
            "edges": list(self._edges),
            "counts": list(self._counts),
            "count": self._n,
            "min": self._min if self._n else None,
            "max": self._max if self._n else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output."""
        hist = cls(state["name"], state["edges"])
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(hist._counts):
            raise ValueError(f"histogram state {state['name']!r}: bad bucket count")
        hist._counts = counts
        hist._n = int(state["count"])
        if hist._n:
            hist._min = float(state["min"])
            hist._max = float(state["max"])
        return hist

    def reset(self) -> None:
        self._counts = [0] * (len(self._edges) + 1)
        self._n = 0
        self._min = math.inf
        self._max = -math.inf


class MetricSet:
    """A namespaced registry of counters and stats for one component.

    Components create their metrics up front (``meter.counter("nand.programs")``)
    and the bench harness walks ``snapshot()`` to build report rows.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._counters: dict[str, Counter] = {}
        self._stats: dict[str, RunningStat] = {}
        self._histograms: dict[str, Histogram] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def counter(self, name: str) -> Counter:
        """Get-or-create a counter."""
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def stat(self, name: str) -> RunningStat:
        """Get-or-create a running statistic."""
        if name not in self._stats:
            self._stats[name] = RunningStat(self._qualify(name))
        return self._stats[name]

    def histogram(self, name: str, edges: Iterable[float] | None = None) -> Histogram:
        """Get-or-create a histogram (exponential edges by default)."""
        if name not in self._histograms:
            if edges is None:
                self._histograms[name] = Histogram.exponential(self._qualify(name))
            else:
                self._histograms[name] = Histogram(self._qualify(name), edges)
        return self._histograms[name]

    def merge(self, other: "MetricSet") -> None:
        """Fold another metric set into this one, name-wise.

        Counters add, stats merge via Welford combination, histograms merge
        bucket-wise (edges must match). Metrics present only in ``other``
        are created here first, so merging into a fresh set is a copy —
        the multiprocess sweep runner folds per-worker sets this way.
        """
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)
        for name, stat in other._stats.items():
            self.stat(name).merge(stat)
        for name, hist in other._histograms.items():
            self.histogram(name, hist._edges).merge(hist)

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def stats(self) -> Iterator[RunningStat]:
        return iter(self._stats.values())

    def snapshot(self, seed_schema: bool = False) -> dict[str, float]:
        """Flat {qualified_name: value} view of everything recorded.

        Never-recorded histograms are skipped (a p50 of 0.0 would conflate
        "no samples" with "zero latency") and stats with samples report
        their spread (``min``/``max``/``stdev``). ``seed_schema=True``
        reproduces the seed's exact key set — mean/count/total only, empty
        histograms included as 0.0 — for the frozen golden captures
        (``scripts/capture_seed_golden.py``).
        """
        out: dict[str, float] = {}
        for c in self._counters.values():
            out[c.name] = float(c.value)
        for s in self._stats.values():
            out[f"{s.name}.mean"] = s.mean
            out[f"{s.name}.count"] = float(s.count)
            out[f"{s.name}.total"] = s.total
            if not seed_schema and s.count:
                out[f"{s.name}.min"] = s.min
                out[f"{s.name}.max"] = s.max
                out[f"{s.name}.stdev"] = s.stdev
        for h in self._histograms.values():
            if seed_schema:
                out[f"{h.name}.p50"] = h.percentile(50, seed_interpolation=True)
                out[f"{h.name}.p99"] = h.percentile(99, seed_interpolation=True)
            elif h.count:
                out[f"{h.name}.count"] = float(h.count)
                out[f"{h.name}.p50"] = h.percentile(50)
                out[f"{h.name}.p99"] = h.percentile(99)
        return out

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for s in self._stats.values():
            s.reset()
        for h in self._histograms.values():
            h.reset()
