"""Side-by-side configuration comparison on identical inputs.

The question downstream users actually ask — "what does BandSlim buy *my*
workload?" — is an A/B/N comparison: same request stream, different device
configurations, deltas on every metric. :func:`compare_configs` materializes
the workload as a trace first, so every configuration sees byte-identical
requests, then tabulates results with reductions relative to the first
(baseline) column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sim.runner import RunResult, run_workload
from repro.units import fmt_bytes
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class Comparison:
    """Results of one workload across several configurations."""

    workload: str
    config_names: tuple[str, ...]
    results: tuple[RunResult, ...]
    rows: list[tuple] = field(default_factory=list, compare=False)

    @property
    def baseline(self) -> RunResult:
        return self.results[0]

    def reduction(self, metric, index: int) -> float:
        """Fractional reduction of ``metric`` vs the baseline column."""
        base = metric(self.baseline)
        if base == 0:
            return 0.0
        return 1.0 - metric(self.results[index]) / base

    def format(self) -> str:
        """Render the comparison as an aligned table."""
        metrics = [
            ("avg response (us)", lambda r: f"{r.avg_response_us:.2f}"),
            ("p99 response (us)", lambda r: f"{r.p99_response_us:.2f}"),
            ("throughput (Kops/s)", lambda r: f"{r.throughput_kops:.1f}"),
            ("PCIe traffic", lambda r: fmt_bytes(r.pcie_total_bytes)),
            ("MMIO traffic", lambda r: fmt_bytes(r.mmio_bytes)),
            ("NAND page writes", lambda r: str(r.nand_page_writes_with_flush)),
            ("avg memcpy (us/op)", lambda r: f"{r.avg_memcpy_us:.2f}"),
        ]
        label_width = max(len(label) for label, _ in metrics)
        col_width = max(12, *(len(n) for n in self.config_names)) + 2
        lines = [f"workload: {self.workload} ({self.baseline.ops} ops)"]
        header = " " * label_width + "".join(
            name.rjust(col_width) for name in self.config_names
        )
        lines.append(header)
        lines.append(" " * label_width + "-" * (col_width * len(self.config_names)))
        for label, fmt in metrics:
            cells = "".join(fmt(r).rjust(col_width) for r in self.results)
            lines.append(label.ljust(label_width) + cells)
        # Reduction summary vs the first configuration.
        if len(self.results) > 1:
            lines.append("")
            for i, name in enumerate(self.config_names[1:], start=1):
                traffic = self.reduction(lambda r: r.pcie_total_bytes, i)
                nand = self.reduction(
                    lambda r: r.nand_page_writes_with_flush, i
                )
                resp = self.reduction(lambda r: r.avg_response_us, i)
                lines.append(
                    f"{name} vs {self.config_names[0]}: "
                    f"{traffic:+.1%} traffic, {nand:+.1%} NAND writes, "
                    f"{resp:+.1%} response (positive = reduced)"
                )
        return "\n".join(lines)


def compare_configs(
    configs: list,
    workload,
    latency=None,
    make_tracer=None,
    **run_kwargs,
) -> Comparison:
    """Run ``workload`` through each configuration on identical inputs.

    ``make_tracer``, when given, is called once per configuration (with the
    resulting config name index) and must return a fresh
    :class:`repro.sim.trace.Tracer` — one tracer per run, so event streams
    never mix across columns.
    """
    if len(configs) < 1:
        raise ConfigError("need at least one configuration to compare")
    trace = Trace.record(workload)
    names = []
    results = []
    for i, config in enumerate(configs):
        tracer = make_tracer(i) if make_tracer is not None else None
        result = run_workload(
            config, trace, latency=latency, tracer=tracer, **run_kwargs
        )
        names.append(result.config_name)
        results.append(result)
    return Comparison(
        workload=trace.name,
        config_names=tuple(names),
        results=tuple(results),
    )
