"""The experiment runner: one workload through one device configuration.

Every figure in the paper reduces to "run workload W against configuration
C and report some subset of {response time, throughput, PCIe traffic, MMIO
traffic, NAND page writes, memcpy time}". :func:`run_workload` produces all
of them in one :class:`RunResult`, so bench scripts only select and format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BandSlimConfig
from repro.core.config import preset as config_preset
from repro.device.kvssd import KVSSD
from repro.errors import ConfigError
from repro.pcie.metrics import amplification_factor
from repro.sim.latency import LatencyModel
from repro.workloads.generator import RequestKind, Workload


@dataclass(frozen=True)
class RunResult:
    """Everything the paper's figures report, from one run."""

    workload: str
    config_name: str
    ops: int
    #: Sum of useful value bytes sent (TAF/WAF denominator).
    value_bytes: int
    #: Simulated time spent inside the workload (excludes final flush).
    elapsed_us: float
    avg_response_us: float
    max_response_us: float
    #: Latency distribution tails (exponential-bucket histogram estimate).
    p50_response_us: float
    p99_response_us: float
    #: PCIe bytes, both directions, protocol + payload (Figs 3a/8/9a/10c).
    pcie_total_bytes: int
    #: Doorbell MMIO subset (Fig 10d).
    mmio_bytes: int
    #: NAND page programs during the workload (Figs 4a/11a/12c).
    nand_page_writes: int
    #: NAND page programs including the final drain of buffers.
    nand_page_writes_with_flush: int
    #: Mean per-op firmware memcpy time (Fig 12d).
    avg_memcpy_us: float
    #: Full component metric snapshot for deeper digging.
    snapshot: dict[str, float] = field(repr=False, default_factory=dict)
    #: JSON-able ``Histogram.state()`` per recorded latency histogram, so
    #: multiprocess sweeps can merge percentile data across workers
    #: (``Histogram.merge``) instead of discarding it.
    latency_hists: dict = field(repr=False, default_factory=dict)

    @property
    def throughput_kops(self) -> float:
        """Operations per simulated millisecond = Kops/s (Figs 10b/12b)."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.ops / (self.elapsed_us / 1e3)

    @property
    def traffic_amplification(self) -> float:
        """TAF: link bytes per useful value byte (Fig 3b)."""
        return amplification_factor(self.pcie_total_bytes, self.value_bytes)

    @property
    def write_amplification(self) -> float:
        """WAF: NAND bytes programmed per useful value byte (Fig 4b)."""
        return amplification_factor(
            int(self.snapshot.get("nand.bytes_programmed", 0)), self.value_bytes
        )

    def scaled_pcie_bytes(self, target_ops: int) -> float:
        """Linear extrapolation to the paper's op count (byte metrics are
        exactly per-op linear for fixed-distribution workloads)."""
        return self.pcie_total_bytes * (target_ops / self.ops)

    def scaled_nand_writes(self, target_ops: int) -> float:
        return self.nand_page_writes * (target_ops / self.ops)


def resolve_config(config: BandSlimConfig | str, **overrides) -> tuple[str, BandSlimConfig]:
    """Accept either a preset name or a config object."""
    if isinstance(config, str):
        return config, config_preset(config, **overrides)
    if isinstance(config, BandSlimConfig):
        if overrides:
            config = config.with_overrides(**overrides)
        return config.transfer_mode.value + "/" + config.packing.value, config
    raise ConfigError(f"expected preset name or BandSlimConfig, got {type(config)}")


def run_workload(
    config: BandSlimConfig | str,
    workload: Workload,
    latency: LatencyModel | None = None,
    device: KVSSD | None = None,
    flush_at_end: bool = True,
    tracer=None,
    batch_window: int | None = None,
    batch_queue_depth: int = 32,
    **config_overrides,
) -> RunResult:
    """Drive ``workload`` through a device built from ``config``.

    A fresh device is built unless one is passed in (multi-phase
    experiments reuse a device across workloads). Passing a
    :class:`repro.sim.trace.Tracer` threads it through the freshly built
    stack; the snapshot then gains the tracer's report keys.

    ``batch_window`` switches the replay to *batched dispatch*: requests
    are collected into windows of that many ops and issued through
    ``put_many``/``get_many`` at ``batch_queue_depth``. PUTs of a window
    run before its GETs (the generator only ever reads keys written
    earlier, so every read still sees its value); DELETEs flush the
    window. This is a different — pipelined — experiment than the serial
    replay, with its own simulated timings; it is exactly as deterministic.
    """
    name, cfg = resolve_config(config, **config_overrides)
    if workload.max_value_bytes > cfg.max_value_bytes:
        cfg = cfg.with_overrides(max_value_bytes=workload.max_value_bytes)
    if device is None:
        device = KVSSD.build(config=cfg, latency=latency, tracer=tracer)
    driver = device.driver

    start_us = device.clock.now_us
    start_programs = device.flash.page_programs
    get_max_size = workload.max_value_bytes
    if batch_window is not None and batch_window > 1:
        _replay_batched(
            driver, workload, get_max_size, batch_window, batch_queue_depth
        )
    else:
        for request in workload.requests():
            if request.kind is RequestKind.PUT:
                assert request.value is not None
                driver.put(request.key, request.value)
            elif request.kind is RequestKind.GET:
                driver.get(request.key, max_size=get_max_size)
            elif request.kind is RequestKind.DELETE:
                driver.delete(request.key)
            else:
                raise ConfigError(f"runner does not handle {request.kind}")
    elapsed_us = device.clock.now_us - start_us
    nand_during = device.flash.page_programs - start_programs

    if flush_at_end:
        driver.flush()
    nand_total = device.flash.page_programs - start_programs

    put_stat = driver.metrics.stat("put_latency_us")
    put_hist = driver.metrics.histogram("put_latency_us")
    get_hist = driver.metrics.histogram("get_latency_us")
    memcpy_stat = device.controller.metrics.stat("memcpy_us_per_op")
    snapshot = device.snapshot()
    if device.tracer is not None:
        snapshot.update(device.tracer.report())
    return RunResult(
        workload=workload.name,
        config_name=name,
        ops=workload.num_ops,
        value_bytes=workload.total_value_bytes,
        elapsed_us=elapsed_us,
        avg_response_us=put_stat.mean,
        max_response_us=put_stat.max,
        p50_response_us=put_hist.percentile(50),
        p99_response_us=put_hist.percentile(99),
        pcie_total_bytes=device.link.meter.total_bytes,
        mmio_bytes=device.link.meter.mmio_bytes,
        nand_page_writes=nand_during,
        nand_page_writes_with_flush=nand_total,
        avg_memcpy_us=memcpy_stat.mean,
        snapshot=snapshot,
        latency_hists={
            hist.name.rsplit(".", 1)[-1]: hist.state()
            for hist in (put_hist, get_hist)
            if hist.count
        },
    )


def _replay_batched(driver, workload, get_max_size, window, queue_depth) -> None:
    """Window-batched dispatch: PUT runs via put_many, GET runs via get_many.

    Within a window PUTs are dispatched before GETs. The workload
    generator's read targets always reference earlier ops, so a GET whose
    PUT shares the window still finds its key; relative order within each
    kind is preserved. DELETEs (and any other kind) act as barriers.
    """
    puts: list[tuple[bytes, bytes]] = []
    gets: list[bytes] = []

    def dispatch() -> None:
        if puts:
            driver.put_many(puts, queue_depth=queue_depth)
            puts.clear()
        if gets:
            driver.get_many(gets, max_size=get_max_size, queue_depth=queue_depth)
            gets.clear()

    for request in workload.requests():
        if request.kind is RequestKind.PUT:
            assert request.value is not None
            puts.append((request.key, request.value))
        elif request.kind is RequestKind.GET:
            gets.append(request.key)
        elif request.kind is RequestKind.DELETE:
            dispatch()
            driver.delete(request.key)
        else:
            raise ConfigError(f"runner does not handle {request.kind}")
        if len(puts) + len(gets) >= window:
            dispatch()
    dispatch()
