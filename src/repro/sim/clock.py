"""Simulated wall clock.

At queue depth 1 the device model is *event-sequential*: one NVMe
passthrough command is in flight at a time (the paper's testbed serializes
commands the same way, §4.2) and components charge time to the clock as
they consume it; request latency is the clock delta across a request.

With queue depth > 1 the pipelined driver keeps several commands in
flight: NAND operations are booked on the per-channel/per-way
:class:`~repro.sim.timeline.NandTimeline` and completions are reaped in
finish order, with :meth:`SimClock.advance_to` jumping the host clock to
each completion's finish time. The clock stays the single source of
"now"; the timeline only tracks when shared NAND resources become free.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in microseconds.

    >>> clk = SimClock()
    >>> clk.advance(2.5)
    >>> clk.now_us
    2.5
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"start_us must be non-negative, got {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us * 1e-6

    def advance(self, delta_us: float) -> float:
        """Advance the clock by ``delta_us`` and return the new time.

        Negative advances are rejected: simulated time never rewinds.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by {delta_us} us")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, t_us: float) -> float:
        """Advance the clock to absolute time ``t_us``; never rewinds.

        A target in the past is a no-op (a completion whose finish time the
        clock already passed is simply reaped "late"). Returns the new now.
        """
        if t_us > self._now_us:
            self._now_us = t_us
        return self._now_us

    def reset(self, start_us: float = 0.0) -> None:
        """Reset the clock (used between bench repetitions)."""
        if start_us < 0:
            raise ValueError(f"start_us must be non-negative, got {start_us}")
        self._now_us = float(start_us)

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch anchored at the current instant."""
        return Stopwatch(self)

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us!r})"


class Stopwatch:
    """Measures elapsed simulated time from its creation instant."""

    __slots__ = ("_clock", "_start_us")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_us = clock.now_us

    @property
    def start_us(self) -> float:
        return self._start_us

    def elapsed_us(self) -> float:
        """Simulated microseconds since the stopwatch was created."""
        return self._clock.now_us - self._start_us

    def restart(self) -> float:
        """Re-anchor at now; returns the lap time that just ended."""
        lap = self.elapsed_us()
        self._start_us = self._clock.now_us
        return lap
