"""Simulated wall clock.

The whole device model is *event-sequential*: one NVMe passthrough command is
in flight at a time (the paper's testbed serializes commands the same way,
§4.2), so a single monotonically advancing clock is sufficient — no event
queue is needed. Components charge time to the clock as they consume it;
request latency is measured as the clock delta across a request.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in microseconds.

    >>> clk = SimClock()
    >>> clk.advance(2.5)
    >>> clk.now_us
    2.5
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"start_us must be non-negative, got {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us * 1e-6

    def advance(self, delta_us: float) -> float:
        """Advance the clock by ``delta_us`` and return the new time.

        Negative advances are rejected: simulated time never rewinds.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by {delta_us} us")
        self._now_us += delta_us
        return self._now_us

    def reset(self, start_us: float = 0.0) -> None:
        """Reset the clock (used between bench repetitions)."""
        if start_us < 0:
            raise ValueError(f"start_us must be non-negative, got {start_us}")
        self._now_us = float(start_us)

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch anchored at the current instant."""
        return Stopwatch(self)

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us!r})"


class Stopwatch:
    """Measures elapsed simulated time from its creation instant."""

    __slots__ = ("_clock", "_start_us")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_us = clock.now_us

    @property
    def start_us(self) -> float:
        return self._start_us

    def elapsed_us(self) -> float:
        """Simulated microseconds since the stopwatch was created."""
        return self._clock.now_us - self._start_us

    def restart(self) -> float:
        """Re-anchor at now; returns the lap time that just ended."""
        lap = self.elapsed_us()
        self._start_us = self._clock.now_us
        return lap
