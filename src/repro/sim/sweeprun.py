"""Multiprocess sweep runner: one grid, many cores, one deterministic JSON.

Experiment sweeps (seeds × geometries × queue depths × workloads) are
embarrassingly parallel: every point builds its own device from scratch,
so points share no state and can run in separate *processes* — sidestepping
the GIL that makes in-process threading useless for a pure-Python
simulator. The rules that keep the merged output deterministic:

* **Per-worker isolation.** A point function builds everything it needs
  (workload, config, device) inside the worker from the picklable
  :class:`SweepPoint` description. Nothing is shared, nothing is global.
* **Deterministic merge.** The grid is sorted by :attr:`SweepPoint.key`
  *before* dispatch and results come back via ``Pool.map`` (order
  preserving), so the merged ``points`` list is byte-identical however
  many workers ran it. Only ``wall_seconds`` varies between runs — the
  self-check (``python -m repro sweep --selfcheck``) strips it and
  asserts serial == parallel on everything else.
* **Fork start method.** Workers inherit the imported tree on Linux
  (cheap); where fork is unavailable the spawn method works too since
  points re-import everything they use.

``parallel_map`` is the bench-facing wrapper: benchmarks hand it a
module-level function and a list of picklable items and get results in
item order, serial when ``workers <= 1`` (the default unless
``REPRO_BENCH_WORKERS`` says otherwise).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import asdict, dataclass

from repro.errors import ConfigError
from repro.sim.stats import Histogram
from repro.units import MIB

#: Fields in a point row that legitimately differ run-to-run (host timing).
WALL_FIELDS = ("wall_seconds",)


@dataclass(frozen=True)
class SweepPoint:
    """One picklable grid point; the worker rebuilds everything from it."""

    workload: str
    config: str
    channels: int
    ways: int
    queue_depth: int
    seed: int
    ops: int
    read_fraction: float = 0.5
    #: Batched replay window (None = serial per-op replay).
    batch_window: int | None = 256

    @property
    def key(self) -> tuple:
        """Total order for the deterministic merge."""
        return (
            self.workload,
            self.config,
            self.channels,
            self.ways,
            self.queue_depth,
            self.seed,
        )


def build_workload(name: str, ops: int, seed: int, read_fraction: float = 0.5):
    """Resolve a sweep workload name: ``mixed`` or a paper workload letter."""
    from repro.workloads.workloads import PAPER_WORKLOADS, workload_mixed

    if name == "mixed":
        return workload_mixed(ops, read_fraction=read_fraction, seed=seed)
    factory = PAPER_WORKLOADS.get(name) or PAPER_WORKLOADS.get(f"W({name})")
    if factory is None:
        known = ["mixed"] + sorted(PAPER_WORKLOADS)
        raise ConfigError(f"unknown sweep workload {name!r}; choose from {known}")
    return factory(ops, seed=seed)


def run_point(point: SweepPoint) -> dict:
    """Execute one grid point and return its (deterministic) result row.

    Module-level so it pickles; imports the simulator lazily so spawn-based
    pools work the same as fork-based ones.
    """
    from repro.sim.runner import run_workload

    workload = build_workload(
        point.workload, point.ops, point.seed, point.read_fraction
    )
    wall0 = time.perf_counter()
    result = run_workload(
        point.config,
        workload,
        nand_capacity_bytes=256 * MIB,
        nand_channels=point.channels,
        nand_ways=point.ways,
        queue_depth=point.queue_depth,
        batch_window=point.batch_window,
        batch_queue_depth=point.queue_depth,
    )
    wall = time.perf_counter() - wall0
    row = asdict(point)
    row.update(
        sim_elapsed_us=round(result.elapsed_us, 3),
        throughput_kops=round(result.throughput_kops, 3),
        avg_response_us=round(result.avg_response_us, 4),
        p99_response_us=round(result.p99_response_us, 4),
        pcie_total_bytes=result.pcie_total_bytes,
        mmio_bytes=result.mmio_bytes,
        nand_page_writes=result.nand_page_writes_with_flush,
        traffic_amplification=round(result.traffic_amplification, 4),
        wall_seconds=round(wall, 4),
        # Raw bucket state (not just p50/p99 scalars) so the merge step can
        # combine percentile data across workers via Histogram.merge.
        latency_hists=result.latency_hists,
    )
    return row


def build_grid(
    seeds,
    geometries,
    queue_depths,
    workloads,
    ops: int,
    config: str = "backfill",
    batch_window: int | None = 256,
) -> list[SweepPoint]:
    """The full cross product, pre-sorted by the merge key."""
    points = [
        SweepPoint(
            workload=workload,
            config=config,
            channels=channels,
            ways=ways,
            queue_depth=qd,
            seed=seed,
            ops=ops,
            batch_window=batch_window,
        )
        for workload in workloads
        for channels, ways in geometries
        for qd in queue_depths
        for seed in seeds
    ]
    points.sort(key=lambda p: p.key)
    return points


def default_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS`` (default: serial)."""
    try:
        return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    except ValueError:
        return 1


def _pool_context():
    # fork inherits the imported tree (cheap start); fall back to spawn
    # where fork doesn't exist — run_point re-imports what it needs.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def parallel_map(func, items, workers: int | None = None) -> list:
    """``[func(x) for x in items]`` across processes, order preserving.

    ``func`` must be a module-level (picklable) function and ``items``
    picklable values. ``workers <= 1`` runs serially in-process — same
    results, no pool overhead — so callers can wire it unconditionally.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    workers = min(workers, len(items)) if items else 1
    if workers <= 1:
        return [func(item) for item in items]
    with _pool_context().Pool(processes=workers) as pool:
        # chunksize=1: points are coarse (whole runs), keep the queue fed.
        return pool.map(func, items, chunksize=1)


def merge_latency_hists(rows: list[dict]) -> dict:
    """Fold every row's latency-histogram state into grid-wide percentiles.

    Workers cannot share a histogram, so each row ships its raw bucket
    state and the merge combines them bucket-wise (``Histogram.merge``) —
    exactly what recording every sample into one histogram would have
    produced. Rows are pre-sorted by the merge key, so the result is
    deterministic regardless of worker count.
    """
    merged: dict[str, Histogram] = {}
    for row in rows:
        for name, state in row.get("latency_hists", {}).items():
            hist = Histogram.from_state(state)
            if name in merged:
                merged[name].merge(hist)
            else:
                merged[name] = hist
    return {
        name: {
            "count": hist.count,
            "min_us": round(hist.min, 4),
            "max_us": round(hist.max, 4),
            "p50_us": round(hist.percentile(50), 4),
            "p99_us": round(hist.percentile(99), 4),
            "p999_us": round(hist.percentile(99.9), 4),
        }
        for name, hist in sorted(merged.items())
    }


def run_sweep(points: list[SweepPoint], workers: int = 1) -> dict:
    """Run a grid and merge into the canonical report object."""
    wall0 = time.perf_counter()
    rows = parallel_map(run_point, points, workers=workers)
    wall = time.perf_counter() - wall0
    return {
        "schema": 2,
        "workers": workers,
        "points": rows,
        "point_count": len(rows),
        "aggregate": merge_latency_hists(rows),
        "wall_seconds": round(wall, 4),
    }


def strip_wall_fields(report: dict) -> dict:
    """A copy of ``report`` with host-timing fields removed (self-check)."""
    stripped = {
        key: value
        for key, value in report.items()
        if key not in ("wall_seconds", "workers")
    }
    stripped["points"] = [
        {k: v for k, v in row.items() if k not in WALL_FIELDS}
        for row in report["points"]
    ]
    return stripped
