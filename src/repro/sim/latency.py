"""Latency model: every time constant in the simulator, in one place.

The paper's testbed is a Cosmos+ OpenSSD (PCIe Gen2 ×8, ARM Cortex-A9
firmware core) driven through a synchronous NVMe passthrough. We reproduce
response-time *shapes*, not the FPGA's absolute numbers, so each constant
below is chosen to land the paper's observed crossovers:

* Piggyback (1 command) ≈ **half** the Baseline response at ≤32 B values
  (paper Fig 8): bare round trip 10 µs vs 10 µs + one 4 KiB page-unit DMA
  ≈ 9 µs → 10/19 ≈ 0.53.
* Piggyback at 64 B (2 commands, 20 µs) ≈ **parity** with Baseline (19 µs).
* Piggyback from 128 B (≥3 commands) **degrades steeply** — each trailing
  transfer command is a full synchronous round trip (paper §4.2).
* Write response is NAND-dominated, ~10× the transfer response (paper
  §2.4): a 16 KiB page program costs 400 µs.
* In-device memcpy is slow (firmware core doing byte copies): 0.01 µs/B ≈
  100 MB/s, which makes All-Packing's large-value copies the visible cost
  in Fig 12(d).

All constants are dataclass fields, so ablations and tests can override any
of them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError
from repro.units import MEM_PAGE_SIZE


@dataclass(frozen=True)
class LatencyModel:
    """Time constants (µs) for the simulated host↔device stack."""

    # --- NVMe command round trip (synchronous passthrough) ---------------
    #: Host driver builds the SQE and writes the SQ tail doorbell (MMIO).
    mmio_doorbell_us: float = 0.8
    #: Device fetches the 64 B SQE from host memory over PCIe.
    sq_fetch_us: float = 3.2
    #: Firmware decodes and dispatches the command.
    cmd_process_us: float = 2.0
    #: Device posts the CQE, raises the interrupt, host handles completion.
    completion_us: float = 4.0

    # --- Page-unit DMA (PRP path) -----------------------------------------
    #: Per-transaction DMA engine setup/teardown cost.
    dma_setup_us: float = 5.0
    #: Per-byte transfer time on the wire. PCIe Gen2 ×8 ≈ 4 GB/s payload
    #: → 0.00025 µs/B, but real engines see well under 1 GB/s effective for
    #: 4 KiB bursts; 0.0015 µs/B puts one 4 KiB page at ≈ 6 µs, landing the
    #: Fig 8 crossover (piggyback parity with Baseline at 64 B).
    dma_per_byte_us: float = 0.0015

    # --- NAND flash (16 KiB page geometry) --------------------------------
    #: Program (write) one NAND page, including flash-channel transfer.
    nand_program_us: float = 400.0
    #: Read one NAND page into device DRAM.
    nand_read_us: float = 80.0
    #: Erase one NAND block.
    nand_erase_us: float = 3000.0
    #: Flash-channel data transfer slice of a page program/read (16 KiB at
    #: ~650 MB/s ONFI ≈ 25 µs). Only the timeline's channel-contention model
    #: uses the split; the op's *total* duration stays nand_program_us /
    #: nand_read_us, so QD=1 timing is unchanged. Clamped to the total when
    #: an override makes the total smaller.
    nand_xfer_us: float = 25.0

    # --- In-device CPU ------------------------------------------------------
    #: memcpy on the firmware core (≈100 MB/s byte-copy on a Cortex-A9).
    memcpy_per_byte_us: float = 0.01
    #: Fixed per-memcpy overhead (function call, cache effects).
    memcpy_setup_us: float = 0.2
    #: Cost of one LSM MemTable insert on the firmware core.
    memtable_insert_us: float = 0.5
    #: Cost of one LSM lookup step (per level probed).
    lsm_probe_us: float = 1.0
    #: Per-pair parse/dispatch cost when unpacking a host-side bulk PUT —
    #: the "extra overhead from unpacking" the paper charges Dotori/KV-CSD
    #: style batching with (§1).
    unpack_per_pair_us: float = 1.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value < 0:
                raise ConfigError(f"LatencyModel.{f.name} must be >= 0, got {value}")

    # --- derived quantities -------------------------------------------------

    @property
    def cmd_round_trip_us(self) -> float:
        """One full synchronous NVMe command round trip, no payload DMA."""
        return (
            self.mmio_doorbell_us
            + self.sq_fetch_us
            + self.cmd_process_us
            + self.completion_us
        )

    @property
    def nand_program_xfer_us(self) -> float:
        """Channel-bus slice of one page program (clamped to the total)."""
        return min(self.nand_xfer_us, self.nand_program_us)

    @property
    def nand_read_xfer_us(self) -> float:
        """Channel-bus slice of one page read (clamped to the total)."""
        return min(self.nand_xfer_us, self.nand_read_us)

    def dma_us(self, nbytes: int) -> float:
        """Page-unit DMA of ``nbytes`` wire bytes (already page-padded)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.dma_setup_us + nbytes * self.dma_per_byte_us

    def dma_pages_us(self, n_pages: int) -> float:
        """DMA of ``n_pages`` whole 4 KiB memory pages in one transaction."""
        if n_pages < 0:
            raise ValueError(f"n_pages must be non-negative, got {n_pages}")
        if n_pages == 0:
            return 0.0
        return self.dma_us(n_pages * MEM_PAGE_SIZE)

    def memcpy_us(self, nbytes: int) -> float:
        """Firmware-core memory copy of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.memcpy_setup_us + nbytes * self.memcpy_per_byte_us

    def with_overrides(self, **overrides: float) -> "LatencyModel":
        """Copy of the model with named constants replaced (for ablations)."""
        return replace(self, **overrides)


#: Default model used throughout benches; mirrors DESIGN.md §5.
DEFAULT_LATENCY = LatencyModel()
