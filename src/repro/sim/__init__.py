"""Simulation substrate: clock, latency model, metric collection, runner."""

from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.sim.stats import Counter, Histogram, MetricSet, RunningStat

__all__ = [
    "SimClock",
    "LatencyModel",
    "Counter",
    "Histogram",
    "MetricSet",
    "RunningStat",
]
