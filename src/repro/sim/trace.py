"""Per-command event/span tracing: the observability layer behind Fig 12.

The paper's evaluation is an observability exercise — per-category PCIe
byte counts (Figs 3, 8-10), response-time breakdowns by phase (Fig 12),
NAND program counts — and aggregate totals cannot answer "where did this
PUT's 400 µs go?". A :class:`Tracer` threads through the whole stack and
records *spans* (simulated start/end timestamps) for every doorbell ring,
SQE fetch, command dispatch, DMA transfer, firmware memcpy, NAND timeline
booking, and completion, each tagged with the driver operation it serves.

Design rules:

* **Zero overhead when disabled.** Components hold ``tracer = None`` by
  default and every hook is a single ``is None`` check — the same pattern
  the fault injector uses. The frozen seed goldens
  (``tests/sim/test_seed_regression.py``) run with no tracer and stay
  byte-identical.
* **Observation only.** The tracer never touches the simulated clock; a
  traced run produces exactly the same latencies, byte counts and NAND
  programs as an untraced one (asserted by
  ``tests/integration/test_trace_integration.py``).
* **Leaf-site phase attribution.** Only the sites that actually advance
  the clock attribute phase time (link, controller dispatch/memcpy, flash,
  driver backoff), so phases never double-count. Unattributed clock time
  (LSM CPU costs such as MemTable inserts) lands in the ``other`` bucket,
  and per-op phases sum exactly to the op's latency.

Phase taxonomy (the Fig 12 decomposition):

========== ==========================================================
phase      simulated time spent in…
========== ==========================================================
doorbell   host MMIO doorbell writes (SQ tail / CQ head)
sq_fetch   device fetching 64 B SQEs from host memory
dispatch   firmware command decode/dispatch
dma        payload DMA over the link, both directions
nand       NAND programs/reads/erases, including flush stalls and,
           for pipelined ops, the wait for the NAND finish time
memcpy     in-device firmware memcpys (§3.3.1)
cache      device-DRAM read-cache hit lookups (read_cache_pages > 0)
completion CQE post + interrupt + host completion handling
backoff    driver retry backoff under fault recovery
other      unattributed remainder (LSM CPU costs, unpacking, …)
========== ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable

#: Schema version stamped into every JSONL dump.
TRACE_SCHEMA_VERSION = 1

#: Every phase a per-op breakdown may contain, in report order.
PHASES = (
    "doorbell",
    "sq_fetch",
    "dispatch",
    "dma",
    "nand",
    "memcpy",
    "cache",
    "completion",
    "backoff",
    "other",
)


@dataclass(slots=True)
class TraceEvent:
    """One timed span (or instant, when ``dur_us`` is 0) in the simulation."""

    ts_us: float
    dur_us: float
    category: str
    name: str
    op_id: int | None = None
    #: Resource lane the span occupies (``way3``, ``ch0``, ``sq1`` …).
    resource: str | None = None
    args: dict | None = None

    def to_json_obj(self) -> dict:
        obj: dict = {
            "type": "event",
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "cat": self.category,
            "name": self.name,
        }
        if self.op_id is not None:
            obj["op"] = self.op_id
        if self.resource is not None:
            obj["res"] = self.resource
        if self.args:
            obj["args"] = self.args
        return obj


@dataclass(slots=True)
class OpTrace:
    """One completed driver operation with its phase breakdown."""

    op_id: int
    kind: str
    start_us: float
    end_us: float
    latency_us: float
    commands: int
    status: str
    phases: dict[str, float]
    args: dict | None = None

    def to_json_obj(self) -> dict:
        obj: dict = {
            "type": "op",
            "op": self.op_id,
            "kind": self.kind,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "latency_us": self.latency_us,
            "commands": self.commands,
            "status": self.status,
            "phases": self.phases,
        }
        if self.args:
            obj["args"] = self.args
        return obj


@dataclass(slots=True)
class _OpenOp:
    """Book-keeping for an operation whose end_op has not arrived yet."""

    op_id: int
    kind: str
    start_us: float
    phases: dict[str, float] = field(default_factory=dict)
    args: dict | None = None


class Tracer:
    """Collects :class:`TraceEvent` spans and per-op phase breakdowns.

    One tracer serves one device stack. Construction does not need the
    simulated clock — :meth:`bind` is called by ``KVSSD.build`` once the
    clock exists, so callers can create the tracer up front and hand it
    to the factory.
    """

    __slots__ = (
        "clock",
        "events",
        "ops",
        "current_op",
        "max_events",
        "dropped_events",
        "_open",
        "_op_seq",
    )

    def __init__(self, clock=None, max_events: int | None = None) -> None:
        self.clock = clock
        self.events: list[TraceEvent] = []
        self.ops: list[OpTrace] = []
        #: The driver op currently executing; spans are tagged with it.
        self.current_op: int | None = None
        #: Optional cap on retained events (None = unbounded).
        self.max_events = max_events
        self.dropped_events = 0
        self._open: dict[int, _OpenOp] = {}
        self._op_seq = 0

    def bind(self, clock) -> None:
        """Attach the simulated clock (used for instant timestamps)."""
        self.clock = clock

    # --- op lifecycle -------------------------------------------------------

    def begin_op(self, kind: str, **args) -> int:
        """Open a driver operation; returns its op id and makes it current."""
        op_id = self._op_seq
        self._op_seq += 1
        self._open[op_id] = _OpenOp(
            op_id=op_id,
            kind=kind,
            start_us=self.clock.now_us,
            args=args or None,
        )
        self.current_op = op_id
        return op_id

    def end_op(
        self, op_id: int, status: str, latency_us: float, commands: int = 1
    ) -> OpTrace:
        """Close an operation; the ``other`` phase absorbs the remainder.

        Phase durations always sum exactly to ``latency_us``. For the
        synchronous (QD=1) path every phase is non-negative; pipelined ops
        overlap on the device, so their attributed phases can exceed the
        wall latency and ``other`` goes negative — that overlap *is* the
        information (docs/observability.md).
        """
        rec = self._open.pop(op_id)
        attributed = sum(rec.phases.values())
        other = latency_us - attributed
        if abs(other) > 1e-9:
            rec.phases["other"] = rec.phases.get("other", 0.0) + other
        op = OpTrace(
            op_id=op_id,
            kind=rec.kind,
            start_us=rec.start_us,
            end_us=rec.start_us + latency_us,
            latency_us=latency_us,
            commands=commands,
            status=status,
            phases=rec.phases,
            args=rec.args,
        )
        self.ops.append(op)
        if self.current_op == op_id:
            self.current_op = None
        return op

    @property
    def open_ops(self) -> int:
        """Operations begun but never ended (abandoned mid-flight)."""
        return len(self._open)

    # --- recording ----------------------------------------------------------

    def span(
        self,
        category: str,
        name: str,
        start_us: float,
        end_us: float,
        phase: str | None = None,
        phase_us: float | None = None,
        resource: str | None = None,
        **args,
    ) -> None:
        """Record a timed span; optionally attribute phase time.

        ``phase_us`` defaults to the span duration but may differ: a NAND
        program booked in a deferred window spans its timeline interval
        while contributing zero clock time to the issuing op (the wait is
        attributed when the completion is delivered).
        """
        if phase is not None:
            op = self._open.get(self.current_op)  # type: ignore[arg-type]
            if op is not None:
                dur = end_us - start_us if phase_us is None else phase_us
                if dur:
                    op.phases[phase] = op.phases.get(phase, 0.0) + dur
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            TraceEvent(
                ts_us=start_us,
                dur_us=end_us - start_us,
                category=category,
                name=name,
                op_id=self.current_op,
                resource=resource,
                args=args or None,
            )
        )

    def add_phase(self, phase: str, dur_us: float) -> None:
        """Attribute phase time to the current op without emitting an event."""
        op = self._open.get(self.current_op)  # type: ignore[arg-type]
        if op is not None and dur_us:
            op.phases[phase] = op.phases.get(phase, 0.0) + dur_us

    def instant(self, category: str, name: str, resource: str | None = None, **args) -> None:
        """Record a zero-duration marker at the current simulated time."""
        now = self.clock.now_us
        self.span(category, name, now, now, resource=resource, **args)

    # --- exporters ----------------------------------------------------------

    def _header_obj(self) -> dict:
        return {
            "type": "header",
            "version": TRACE_SCHEMA_VERSION,
            "events": len(self.events),
            "ops": len(self.ops),
            "open_ops": self.open_ops,
            "dropped_events": self.dropped_events,
        }

    def write_jsonl(self, dest: str | IO[str]) -> None:
        """Dump header, every event, then every op as JSON lines."""
        if isinstance(dest, str):
            with open(dest, "w", encoding="utf-8") as fp:
                self.write_jsonl(fp)
            return
        dest.write(json.dumps(self._header_obj()) + "\n")
        for event in self.events:
            dest.write(json.dumps(event.to_json_obj()) + "\n")
        for op in self.ops:
            dest.write(json.dumps(op.to_json_obj()) + "\n")

    def chrome_trace(self) -> dict:
        """The events as a Chrome ``trace_event`` document.

        Load the written file in chrome://tracing (or Perfetto) to see
        channel/way parallelism as horizontal lanes. Ops render on a
        dedicated lane; resource-tagged spans (ways, channels, queues) get
        one lane each; remaining categories share a lane per category.
        """
        tids: dict[str, int] = {"ops": 0}
        def tid_for(lane: str) -> int:
            if lane not in tids:
                tids[lane] = len(tids)
            return tids[lane]

        trace_events: list[dict] = []
        for op in self.ops:
            trace_events.append(
                {
                    "name": f"{op.kind}#{op.op_id}",
                    "cat": "op",
                    "ph": "X",
                    "ts": op.start_us,
                    "dur": op.latency_us,
                    "pid": 0,
                    "tid": 0,
                    "args": {"status": op.status, "phases": op.phases},
                }
            )
        for event in self.events:
            lane = event.resource if event.resource is not None else event.category
            obj = {
                "name": event.name,
                "cat": event.category,
                "ph": "X" if event.dur_us else "i",
                "ts": event.ts_us,
                "dur": event.dur_us,
                "pid": 0,
                "tid": tid_for(lane),
            }
            args = dict(event.args) if event.args else {}
            if event.op_id is not None:
                args["op"] = event.op_id
            if args:
                obj["args"] = args
            trace_events.append(obj)
        for lane, tid in tids.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome(self, dest: str | IO[str]) -> None:
        if isinstance(dest, str):
            with open(dest, "w", encoding="utf-8") as fp:
                self.write_chrome(fp)
            return
        json.dump(self.chrome_trace(), dest)

    def report(self) -> dict[str, float]:
        """Flat metric report: totals and per-kind phase means.

        The same shape as ``MetricSet.snapshot()`` so bench harnesses can
        merge it into their rows.
        """
        out: dict[str, float] = {
            "trace.events": float(len(self.events)),
            "trace.ops": float(len(self.ops)),
            "trace.open_ops": float(self.open_ops),
            "trace.dropped_events": float(self.dropped_events),
        }
        by_kind: dict[str, list[OpTrace]] = {}
        for op in self.ops:
            by_kind.setdefault(op.kind, []).append(op)
        for kind, ops in sorted(by_kind.items()):
            n = len(ops)
            out[f"trace.{kind}.count"] = float(n)
            out[f"trace.{kind}.latency_us.mean"] = sum(o.latency_us for o in ops) / n
            for phase in PHASES:
                total = sum(o.phases.get(phase, 0.0) for o in ops)
                if total:
                    out[f"trace.{kind}.phase.{phase}.mean_us"] = total / n
        by_cat: dict[str, int] = {}
        for event in self.events:
            by_cat[event.category] = by_cat.get(event.category, 0) + 1
        for cat, count in sorted(by_cat.items()):
            out[f"trace.events.{cat}"] = float(count)
        return out

    def reset(self) -> None:
        """Forget everything recorded (bench repetitions)."""
        self.events.clear()
        self.ops.clear()
        self._open.clear()
        self.current_op = None
        self.dropped_events = 0


def format_phase_table(ops: Iterable[OpTrace], kinds: tuple[str, ...] = ("put", "get")) -> str:
    """Render mean per-phase durations per op kind as an aligned table."""
    by_kind: dict[str, list[OpTrace]] = {}
    for op in ops:
        by_kind.setdefault(op.kind, []).append(op)
    rows = []
    header = f"{'phase':<12}" + "".join(
        f"{kind + ' (us)':>16}" for kind in kinds if kind in by_kind
    )
    rows.append(header)
    rows.append("-" * len(header))
    shown = [k for k in kinds if k in by_kind]
    for phase in PHASES:
        cells = []
        any_nonzero = False
        for kind in shown:
            ops_k = by_kind[kind]
            mean = sum(o.phases.get(phase, 0.0) for o in ops_k) / len(ops_k)
            any_nonzero = any_nonzero or mean != 0.0
            cells.append(f"{mean:>16.3f}")
        if any_nonzero:
            rows.append(f"{phase:<12}" + "".join(cells))
    total_cells = []
    for kind in shown:
        ops_k = by_kind[kind]
        total_cells.append(
            f"{sum(o.latency_us for o in ops_k) / len(ops_k):>16.3f}"
        )
    rows.append("-" * len(header))
    rows.append(f"{'total':<12}" + "".join(total_cells))
    return "\n".join(rows)
