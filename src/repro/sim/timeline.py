"""Per-channel / per-way NAND resource timeline (virtual-time scheduler).

The paper's Cosmos+ platform is a 4-channel × 8-way module (Table 1): real
firmware overlaps page programs on distinct ways while each channel's bus
serializes data transfers and each way's cell array serializes its own
program/read/erase. This module models exactly that — no event queue, just
a ``busy_until_us`` timestamp per channel and per way, in the style of
SimpleSSD's and Amber's resource-level parallelism (PAPERS.md): an
operation issued at time *t* starts when its resources are free
(``max(t, channel_busy, way_busy)``) and pushes their busy horizon to its
end.

Booking is separate from clock advancement on purpose. In synchronous
(queue-depth-1) mode the caller advances :class:`~repro.sim.clock.SimClock`
to the booked end, which degenerates to exactly the seed's serial
``clock.advance(duration)`` — the QD=1 equivalence guarantee
(docs/parallel-timing.md). In deferred mode (pipelined driver, QD>1) the
clock stays put and only the booked end times flow back as completion
finish times, so programs to distinct ways overlap in virtual time.

Timing split per operation kind (see docs/parallel-timing.md):

* **program** — channel transfer first (bus busy), then cell program; the
  way is busy for the whole interval (transfer + tPROG).
* **read** — cell sense first (way busy), then channel transfer; the way is
  busy for the whole interval.
* **erase** — way only; erase moves no data over the channel bus.
"""

from __future__ import annotations

from repro.errors import NandError
from repro.nand.geometry import NandGeometry


class ReadCoalescer:
    """Shared-page read window for one pipelined GET/EXIST batch.

    While a batch of reads is in flight, several commands whose data lives
    on the same physical page can be served by a *single* NAND sense and
    data-out transfer: the first command books the read on the timeline and
    records ``ppn -> booked end``; later commands whose issue point falls
    inside that window ride along — no new booking, one bus slice, N
    device-side memcpys. Once virtual time passes the booked end the data
    has left the plane register, so a fresh sense is booked (retention
    across completions is the page cache's job, not the coalescer's).

    The packed layouts are what make this pay off: All/Backfill put many
    values on one 16 KiB page, so a scan-shaped batch coalesces most of its
    senses away, while the Block layout's one-value-per-slot spreads the
    same batch across 4x the pages.
    """

    __slots__ = ("window", "sensed", "coalesced")

    def __init__(self) -> None:
        #: ppn -> booked end of the in-flight sense+transfer serving it.
        self.window: dict[int, float] = {}
        #: Reads that booked a real NAND sense during this batch.
        self.sensed = 0
        #: Reads served by an in-flight sense of the same page.
        self.coalesced = 0

    @property
    def coalesce_rate(self) -> float:
        """Fraction of batch reads that shared an in-flight sense."""
        total = self.sensed + self.coalesced
        return self.coalesced / total if total else 0.0


class NandTimeline:
    """Busy-until bookkeeping for one NAND module's channels and ways."""

    __slots__ = (
        "geometry",
        "channel_busy_until_us",
        "way_busy_until_us",
        "way_busy_total_us",
        "_ways_per_channel",
        "_tracer",
    )

    def __init__(self, geometry: NandGeometry) -> None:
        self.geometry = geometry
        #: Absolute time each channel bus becomes free.
        self.channel_busy_until_us = [0.0] * geometry.channels
        #: Absolute time each way (die) becomes free.
        self.way_busy_until_us = [0.0] * geometry.total_ways
        #: Cumulative busy time per way (utilization accounting).
        self.way_busy_total_us = [0.0] * geometry.total_ways
        self._ways_per_channel = geometry.ways_per_channel
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Emit a channel-bus span for every booked data transfer slice."""
        self._tracer = tracer

    # --- queries ------------------------------------------------------------

    def way_of_ppn(self, ppn: int) -> int:
        geo = self.geometry
        return ppn // (geo.pages_per_block * geo.blocks_per_way)

    def way_of_block(self, block_index: int) -> int:
        return block_index // self.geometry.blocks_per_way

    def channel_of_way(self, way: int) -> int:
        return way // self._ways_per_channel

    @property
    def frontier_us(self) -> float:
        """Latest busy horizon across every way (module drain time)."""
        return max(self.way_busy_until_us)

    def way_utilization(self, elapsed_us: float) -> list[float]:
        """Fraction of ``elapsed_us`` each way spent busy."""
        if elapsed_us <= 0:
            return [0.0] * len(self.way_busy_total_us)
        return [busy / elapsed_us for busy in self.way_busy_total_us]

    # --- booking ------------------------------------------------------------

    def book_program(
        self, way: int, issue_us: float, total_us: float, xfer_us: float
    ) -> tuple[float, float]:
        """Book one page program issued at ``issue_us``; returns (start, end).

        The channel bus is held for the leading ``xfer_us`` (data shipped to
        the plane register), the way for the whole ``total_us``.
        """
        channel = way // self._ways_per_channel
        start = issue_us
        way_free = self.way_busy_until_us[way]
        if way_free > start:
            start = way_free
        ch_free = self.channel_busy_until_us[channel]
        if ch_free > start:
            start = ch_free
        end = start + total_us
        self.channel_busy_until_us[channel] = start + xfer_us
        self.way_busy_until_us[way] = end
        self.way_busy_total_us[way] += total_us
        if self._tracer is not None:
            self._tracer.span(
                "nand_bus", "xfer_in", start, start + xfer_us,
                resource=f"ch{channel}",
            )
        return start, end

    def book_read(
        self, way: int, issue_us: float, total_us: float, xfer_us: float
    ) -> tuple[float, float]:
        """Book one page read; sense on the way first, transfer out last."""
        if xfer_us > total_us:
            raise NandError(
                f"read transfer {xfer_us}us exceeds total {total_us}us"
            )
        channel = way // self._ways_per_channel
        start = issue_us
        way_free = self.way_busy_until_us[way]
        if way_free > start:
            start = way_free
        # Sense proceeds on the die; the data-out transfer then waits for a
        # free bus slot, stretching the way's occupancy if the bus is busy.
        xfer_start = start + (total_us - xfer_us)
        ch_free = self.channel_busy_until_us[channel]
        if ch_free > xfer_start:
            xfer_start = ch_free
        end = xfer_start + xfer_us
        self.channel_busy_until_us[channel] = end
        self.way_busy_until_us[way] = end
        self.way_busy_total_us[way] += end - start
        if self._tracer is not None:
            self._tracer.span(
                "nand_bus", "xfer_out", xfer_start, end,
                resource=f"ch{channel}",
            )
        return start, end

    def book_erase(self, way: int, issue_us: float, total_us: float) -> tuple[float, float]:
        """Book one block erase; occupies the way only (no bus traffic)."""
        start = issue_us
        way_free = self.way_busy_until_us[way]
        if way_free > start:
            start = way_free
        end = start + total_us
        self.way_busy_until_us[way] = end
        self.way_busy_total_us[way] += total_us
        return start, end

    def reset(self) -> None:
        """Forget all bookings (bench repetitions)."""
        geo = self.geometry
        self.channel_busy_until_us = [0.0] * geo.channels
        self.way_busy_until_us = [0.0] * geo.total_ways
        self.way_busy_total_us = [0.0] * geo.total_ways
